package platform

import (
	"math"
	"testing"

	"github.com/twig-sched/twig/internal/checkpoint"
)

func TestFrequencies(t *testing.T) {
	fs := Frequencies()
	if len(fs) != 9 {
		t.Fatalf("expected 9 DVFS states, got %d", len(fs))
	}
	if fs[0] != 1.2 || fs[8] != 2.0 {
		t.Fatalf("range = [%v, %v]", fs[0], fs[8])
	}
	for i := 1; i < len(fs); i++ {
		if math.Abs(fs[i]-fs[i-1]-0.1) > 1e-9 {
			t.Fatalf("step between %v and %v", fs[i-1], fs[i])
		}
	}
}

func TestFreqStepRoundtrip(t *testing.T) {
	for step := 0; step < NumFreqSteps; step++ {
		if got := StepForFreq(FreqForStep(step)); got != step {
			t.Fatalf("StepForFreq(FreqForStep(%d)) = %d", step, got)
		}
	}
	if FreqForStep(-5) != MinFreqGHz || FreqForStep(99) != MaxFreqGHz {
		t.Fatal("FreqForStep must clamp")
	}
	if StepForFreq(0.1) != 0 || StepForFreq(9.9) != NumFreqSteps-1 {
		t.Fatal("StepForFreq must clamp")
	}
	if StepForFreq(1.44) != 2 { // nearest is 1.4
		t.Fatalf("StepForFreq(1.44) = %d", StepForFreq(1.44))
	}
}

func TestNewPlatformLayout(t *testing.T) {
	p := New(DefaultConfig())
	if p.NumCores() != 36 {
		t.Fatalf("NumCores = %d", p.NumCores())
	}
	s0 := p.SocketCores(0)
	s1 := p.SocketCores(1)
	if len(s0) != 18 || len(s1) != 18 {
		t.Fatalf("socket sizes %d/%d", len(s0), len(s1))
	}
	if p.Core(s1[0]).Socket != 1 {
		t.Fatal("socket attribution")
	}
	for _, c := range p.Cores() {
		if !c.Online || c.FreqGHz != MinFreqGHz {
			t.Fatal("cores must start online at min frequency")
		}
	}
}

func TestSetFreqSnapsToGrid(t *testing.T) {
	p := New(DefaultConfig())
	p.SetFreq(3, 1.57)
	if got := p.Core(3).FreqGHz; got != 1.6 {
		t.Fatalf("snapped freq = %v", got)
	}
	p.SetFreq(3, 5.0)
	if p.Core(3).FreqGHz != MaxFreqGHz {
		t.Fatal("freq must clamp to max")
	}
}

func TestAffinityAndSharing(t *testing.T) {
	p := New(DefaultConfig())
	if err := p.Assign(0, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.Assign(0, 4); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := p.Assign(1, 4); err != nil {
		t.Fatal(err)
	}
	if got := p.ShareOf(0, 4); got != 0.5 {
		t.Fatalf("ShareOf = %v", got)
	}
	if got := p.ShareOf(2, 4); got != 0 {
		t.Fatalf("unassigned ShareOf = %v", got)
	}
	if cores := p.ServiceCores(0); len(cores) != 1 || cores[0] != 4 {
		t.Fatalf("ServiceCores = %v", cores)
	}
	p.ClearAffinity()
	if len(p.ServiceCores(0)) != 0 {
		t.Fatal("ClearAffinity")
	}
}

func TestHotplug(t *testing.T) {
	p := New(DefaultConfig())
	if err := p.Assign(0, 7); err != nil {
		t.Fatal(err)
	}
	p.SetOnline(7, false)
	if len(p.ServiceCores(0)) != 0 {
		t.Fatal("offline core must drop owners")
	}
	if err := p.Assign(0, 7); err == nil {
		t.Fatal("assigning to offline core must fail")
	}
	if p.ShareOf(0, 7) != 0 {
		t.Fatal("offline share must be 0")
	}
	p.SetOnline(7, true)
	if err := p.Assign(0, 7); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	p := New(DefaultConfig())
	for _, f := range []func(){
		func() { p.Core(-1) },
		func() { p.Core(99) },
		func() { p.SocketCores(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Sockets: 0, CoresPerSocket: 4})
}

func TestFreqRangeDefaults(t *testing.T) {
	lo, hi := DefaultConfig().FreqRange()
	if lo != MinFreqGHz || hi != MaxFreqGHz {
		t.Fatalf("default range = [%v,%v]", lo, hi)
	}
	if DefaultConfig().NumFreqStepsFor() != NumFreqSteps {
		t.Fatal("default step count")
	}
	edge := Config{Sockets: 1, CoresPerSocket: 10, MinFreqGHz: 1.2, MaxFreqGHz: 1.6}
	lo, hi = edge.FreqRange()
	if lo != 1.2 || hi != 1.6 {
		t.Fatalf("edge range = [%v,%v]", lo, hi)
	}
	if edge.NumFreqStepsFor() != 5 {
		t.Fatalf("edge steps = %d", edge.NumFreqStepsFor())
	}
}

// TestClampFreqMatchesLegacyGrid pins the bit-identity of the per-config
// clamp with the historical FreqForStep(StepForFreq(...)) path on the
// default platform, so existing trajectories and checkpoints replay
// unchanged.
func TestClampFreqMatchesLegacyGrid(t *testing.T) {
	cfg := DefaultConfig()
	for i := 0; i <= 1400; i++ {
		ghz := 0.9 + float64(i)*0.001
		want := FreqForStep(StepForFreq(ghz))
		if got := cfg.ClampFreq(ghz); got != want {
			t.Fatalf("ClampFreq(%v) = %v, legacy grid gives %v", ghz, got, want)
		}
	}
	if got := cfg.ClampFreq(math.NaN()); got != MinFreqGHz {
		t.Fatalf("ClampFreq(NaN) = %v", got)
	}
}

func TestHeterogeneousPlatform(t *testing.T) {
	cfg := Config{Sockets: 1, CoresPerSocket: 10, MinFreqGHz: 1.2, MaxFreqGHz: 1.6}
	p := New(cfg)
	if p.NumCores() != 10 {
		t.Fatalf("cores = %d", p.NumCores())
	}
	if f := p.Core(0).FreqGHz; f != 1.2 {
		t.Fatalf("initial freq = %v", f)
	}
	p.SetFreq(3, 2.0) // above this SKU's cap: governor clamps
	if f := p.Core(3).FreqGHz; f != 1.6 {
		t.Fatalf("clamped freq = %v", f)
	}
	p.SetFreq(3, 1.44) // snaps to the 0.1 grid
	if f := p.Core(3).FreqGHz; f != 1.4 {
		t.Fatalf("snapped freq = %v", f)
	}

	// A checkpoint cut on this SKU restores onto the same shape but
	// rejects frequencies outside its range.
	e := checkpoint.NewEncoder()
	p.EncodeState(e)
	q := New(cfg)
	if err := q.DecodeState(checkpoint.NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if q.Core(3).FreqGHz != 1.4 {
		t.Fatal("restored freq")
	}
}

func TestInvalidFreqRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Sockets: 1, CoresPerSocket: 4, MinFreqGHz: 1.8, MaxFreqGHz: 1.2})
}
