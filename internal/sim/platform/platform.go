// Package platform models the server hardware Twig manages: a dual-socket
// machine (the paper's 2× Intel Xeon E5-2695v4, 18 cores per socket) with
// per-core DVFS from 1.20 GHz to 2.00 GHz in 0.1 GHz steps, CPU hotplug,
// and core-affinity assignment of services to cores, including the
// time-sharing that resource arbitration falls back to when requests
// overlap.
package platform

import (
	"fmt"
	"math"

	"github.com/twig-sched/twig/internal/checkpoint"
)

// DVFS constants of the evaluation platform (Sec. V).
const (
	MinFreqGHz  = 1.20
	MaxFreqGHz  = 2.00
	FreqStepGHz = 0.10
)

// NumFreqSteps is the number of selectable DVFS states (9).
var NumFreqSteps = int(math.Round((MaxFreqGHz-MinFreqGHz)/FreqStepGHz)) + 1

// NumCacheWays is the number of LLC ways Intel CAT can partition on the
// modelled Xeon E5 v4 (20 ways over the 45 MB LLC). The paper could not
// enable CAT on its production servers; this reproduction implements it
// as the optional third action dimension the Sec. V-B1 memory-complexity
// example anticipates.
const NumCacheWays = 20

// Frequencies returns the selectable frequencies in ascending order.
func Frequencies() []float64 {
	out := make([]float64, NumFreqSteps)
	for i := range out {
		out[i] = FreqForStep(i)
	}
	return out
}

// FreqForStep maps a DVFS action index (0-based) to GHz.
func FreqForStep(step int) float64 {
	if step < 0 {
		step = 0
	}
	if step >= NumFreqSteps {
		step = NumFreqSteps - 1
	}
	return math.Round((MinFreqGHz+float64(step)*FreqStepGHz)*100) / 100
}

// StepForFreq maps a frequency in GHz to the nearest DVFS action index.
func StepForFreq(ghz float64) int {
	step := int(math.Round((ghz - MinFreqGHz) / FreqStepGHz))
	if step < 0 {
		step = 0
	}
	if step >= NumFreqSteps {
		step = NumFreqSteps - 1
	}
	return step
}

// Config describes the machine shape. MinFreqGHz/MaxFreqGHz bound the
// per-core DVFS range for heterogeneous SKUs (e.g. an edge node capped
// at 1.6 GHz); zero values select the paper platform's 1.20–2.00 GHz.
// Frequencies always snap to the 0.1 GHz grid.
type Config struct {
	Sockets        int
	CoresPerSocket int
	MinFreqGHz     float64
	MaxFreqGHz     float64
}

// DefaultConfig is the paper's evaluation node: 2 sockets × 18 cores,
// hyper-threading disabled.
func DefaultConfig() Config { return Config{Sockets: 2, CoresPerSocket: 18} }

// FreqRange returns the configured DVFS bounds, defaulting to the paper
// platform's range, snapped to the 0.1 GHz grid.
func (c Config) FreqRange() (lo, hi float64) {
	lo, hi = c.MinFreqGHz, c.MaxFreqGHz
	if lo == 0 {
		lo = MinFreqGHz
	}
	if hi == 0 {
		hi = MaxFreqGHz
	}
	lo = math.Round(lo*10) / 10
	hi = math.Round(hi*10) / 10
	return lo, hi
}

// NumFreqStepsFor returns the number of selectable DVFS states in the
// configured range.
func (c Config) NumFreqStepsFor() int {
	lo, hi := c.FreqRange()
	return int(math.Round((hi-lo)/FreqStepGHz)) + 1
}

// ClampFreq snaps a frequency to the 0.1 GHz grid and clamps it to the
// configured range, as the acpi-cpufreq governor would. The snapping
// uses the same step arithmetic as FreqForStep/StepForFreq, so on the
// default range it agrees bit-for-bit with the historical
// FreqForStep(StepForFreq(ghz)) path.
func (c Config) ClampFreq(ghz float64) float64 {
	lo, hi := c.FreqRange()
	step := math.Round((ghz - MinFreqGHz) / FreqStepGHz)
	if math.IsNaN(step) {
		return lo
	}
	g := math.Round((MinFreqGHz+step*FreqStepGHz)*100) / 100
	if g < lo {
		return lo
	}
	if g > hi {
		return hi
	}
	return g
}

// validateFreqRange panics on an unusable DVFS range; called from New so
// a bad scenario spec fails loudly at construction.
func (c Config) validateFreqRange() {
	lo, hi := c.FreqRange()
	if math.IsNaN(lo) || math.IsNaN(hi) || lo < 0.1 || hi < lo {
		panic(fmt.Sprintf("platform: invalid DVFS range [%v,%v]", lo, hi))
	}
}

// Core is one physical core.
type Core struct {
	ID     int
	Socket int
	// FreqGHz is the current DVFS setting.
	FreqGHz float64
	// Online is false when the core is hot-unplugged.
	Online bool
	// Owners lists the services currently affined to this core; more
	// than one owner means the core is time-shared.
	Owners []int
}

// Platform is the mutable hardware state.
type Platform struct {
	cfg   Config
	cores []Core
}

// New creates a platform with all cores online at the minimum frequency
// and no affinity assignments.
func New(cfg Config) *Platform {
	if cfg.Sockets <= 0 || cfg.CoresPerSocket <= 0 {
		panic(fmt.Sprintf("platform: invalid config %+v", cfg))
	}
	cfg.validateFreqRange()
	lo, _ := cfg.FreqRange()
	p := &Platform{cfg: cfg}
	p.cores = make([]Core, cfg.Sockets*cfg.CoresPerSocket)
	for i := range p.cores {
		p.cores[i] = Core{
			ID:      i,
			Socket:  i / cfg.CoresPerSocket,
			FreqGHz: lo,
			Online:  true,
		}
	}
	return p
}

// Config returns the machine shape.
func (p *Platform) Config() Config { return p.cfg }

// NumCores returns the total number of cores.
func (p *Platform) NumCores() int { return len(p.cores) }

// Core returns a copy of the core state.
func (p *Platform) Core(id int) Core {
	p.check(id)
	return p.cores[id]
}

// Cores returns a snapshot of all core states.
func (p *Platform) Cores() []Core {
	out := make([]Core, len(p.cores))
	copy(out, p.cores)
	return out
}

// SocketCores returns the IDs of the cores on a socket.
func (p *Platform) SocketCores(socket int) []int {
	if socket < 0 || socket >= p.cfg.Sockets {
		panic(fmt.Sprintf("platform: socket %d out of range", socket))
	}
	out := make([]int, 0, p.cfg.CoresPerSocket)
	for _, c := range p.cores {
		if c.Socket == socket {
			out = append(out, c.ID)
		}
	}
	return out
}

// SetFreq sets the DVFS state of one core (clamped to the machine's
// legal range and snapped to the 0.1 GHz grid, as the acpi-cpufreq
// governor would).
func (p *Platform) SetFreq(id int, ghz float64) {
	p.check(id)
	p.cores[id].FreqGHz = p.cfg.ClampFreq(ghz)
}

// SetOnline hotplugs a core in or out. Offline cores drop their owners.
func (p *Platform) SetOnline(id int, online bool) {
	p.check(id)
	p.cores[id].Online = online
	if !online {
		p.cores[id].Owners = nil
	}
}

// RemapOwners rewrites every core's owner list through f, which maps an
// old service index to its new index; returning keep=false drops the
// owner from the core. Used when the set of hosted services changes at
// runtime: the survivors' indices shift down and the departed service's
// affinity entries must vanish.
func (p *Platform) RemapOwners(f func(service int) (newIndex int, keep bool)) {
	for i := range p.cores {
		var out []int
		for _, o := range p.cores[i].Owners {
			if n, keep := f(o); keep {
				out = append(out, n)
			}
		}
		p.cores[i].Owners = out
	}
}

// ClearAffinity removes all service→core assignments.
func (p *Platform) ClearAffinity() {
	for i := range p.cores {
		p.cores[i].Owners = nil
	}
}

// Assign affines a service to a core (sched_setaffinity equivalent).
// Assigning to an offline core is an error.
func (p *Platform) Assign(service, coreID int) error {
	p.check(coreID)
	if !p.cores[coreID].Online {
		return fmt.Errorf("platform: core %d is offline", coreID)
	}
	for _, o := range p.cores[coreID].Owners {
		if o == service {
			return nil
		}
	}
	p.cores[coreID].Owners = append(p.cores[coreID].Owners, service)
	return nil
}

// ServiceCores returns the cores a service is affined to.
func (p *Platform) ServiceCores(service int) []int {
	var out []int
	for _, c := range p.cores {
		for _, o := range c.Owners {
			if o == service {
				out = append(out, c.ID)
			}
		}
	}
	return out
}

// ShareOf returns the time share a service receives on a core
// (1/len(owners)), or 0 if not assigned or offline.
func (p *Platform) ShareOf(service, coreID int) float64 {
	p.check(coreID)
	c := p.cores[coreID]
	if !c.Online || len(c.Owners) == 0 {
		return 0
	}
	for _, o := range c.Owners {
		if o == service {
			return 1 / float64(len(c.Owners))
		}
	}
	return 0
}

// EncodeState writes the mutable hardware state: per-core DVFS setting,
// online flag and affinity owners. The machine shape is configuration
// and goes in as a fingerprint.
func (p *Platform) EncodeState(e *checkpoint.Encoder) {
	e.Int(p.cfg.Sockets)
	e.Int(p.cfg.CoresPerSocket)
	for _, c := range p.cores {
		e.F64(c.FreqGHz)
		e.Bool(c.Online)
		e.Ints(c.Owners)
	}
}

// DecodeState restores state written by EncodeState into a platform of
// the same shape.
func (p *Platform) DecodeState(d *checkpoint.Decoder) error {
	sockets, cps := d.Int(), d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if sockets != p.cfg.Sockets || cps != p.cfg.CoresPerSocket {
		return fmt.Errorf("platform: checkpoint is for %d×%d cores, this machine is %d×%d",
			sockets, cps, p.cfg.Sockets, p.cfg.CoresPerSocket)
	}
	for i := range p.cores {
		freq := d.F64()
		online := d.Bool()
		owners := d.Ints()
		if err := d.Err(); err != nil {
			return err
		}
		if lo, hi := p.cfg.FreqRange(); math.IsNaN(freq) || freq < lo || freq > hi {
			return fmt.Errorf("platform: core %d frequency %v GHz outside [%v,%v]", i, freq, lo, hi)
		}
		p.cores[i].FreqGHz = freq
		p.cores[i].Online = online
		p.cores[i].Owners = owners
	}
	return nil
}

func (p *Platform) check(id int) {
	if id < 0 || id >= len(p.cores) {
		panic(fmt.Sprintf("platform: core %d out of range [0,%d)", id, len(p.cores)))
	}
}
