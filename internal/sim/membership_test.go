package sim

import (
	"errors"
	"testing"

	"github.com/twig-sched/twig/internal/sim/faults"
	"github.com/twig-sched/twig/internal/sim/service"
)

func membershipServer(t *testing.T, names ...string) *Server {
	t.Helper()
	specs := make([]ServiceSpec, len(names))
	for i, n := range names {
		specs[i] = ServiceSpec{Profile: service.MustLookup(n), QoSTargetMs: 5, Seed: int64(i + 1)}
	}
	cfg := DefaultConfig()
	return NewServer(cfg, specs)
}

// Admitting a service mid-run must not disturb the state of the ones
// already hosted: the survivors' trajectory continues from where it was.
func TestAddServicePreservesExistingState(t *testing.T) {
	srv := membershipServer(t, "masstree")
	cores := srv.ManagedCores()
	asg := Assignment{PerService: []Allocation{{Cores: cores, FreqGHz: 2.0}}}
	load := []float64{0.5 * service.MustLookup("masstree").MaxLoadRPS}
	for i := 0; i < 20; i++ {
		srv.MustStep(asg, load)
	}
	clock := srv.Clock()

	if err := srv.AddService(ServiceSpec{Profile: service.MustLookup("xapian"), QoSTargetMs: 8, Seed: 99}); err != nil {
		t.Fatalf("AddService: %v", err)
	}
	if srv.NumServices() != 2 {
		t.Fatalf("NumServices = %d after add, want 2", srv.NumServices())
	}
	if srv.Clock() != clock {
		t.Fatalf("clock moved from %d to %d on AddService", clock, srv.Clock())
	}

	// The grown server must accept a 2-service assignment and report
	// per-service stats for both.
	half := len(cores) / 2
	asg2 := Assignment{PerService: []Allocation{
		{Cores: cores[:half], FreqGHz: 2.0},
		{Cores: cores[half:], FreqGHz: 2.0},
	}}
	loads2 := []float64{load[0], 0.3 * service.MustLookup("xapian").MaxLoadRPS}
	res := srv.MustStep(asg2, loads2)
	if len(res.Services) != 2 {
		t.Fatalf("step reports %d services, want 2", len(res.Services))
	}
	if res.Services[1].NumCores != len(cores)-half {
		t.Fatalf("new service got %d cores, want %d", res.Services[1].NumCores, len(cores)-half)
	}
}

// Removing a service must compact indices: the survivor that used to be
// index 1 becomes index 0 and keeps its cores through the owner remap.
func TestRemoveServiceRemapsOwners(t *testing.T) {
	srv := membershipServer(t, "masstree", "xapian")
	cores := srv.ManagedCores()
	half := len(cores) / 2
	asg := Assignment{PerService: []Allocation{
		{Cores: cores[:half], FreqGHz: 1.8},
		{Cores: cores[half:], FreqGHz: 1.8},
	}}
	loads := []float64{
		0.4 * service.MustLookup("masstree").MaxLoadRPS,
		0.4 * service.MustLookup("xapian").MaxLoadRPS,
	}
	srv.MustStep(asg, loads)

	if err := srv.RemoveService(0); err != nil {
		t.Fatalf("RemoveService: %v", err)
	}
	if srv.NumServices() != 1 {
		t.Fatalf("NumServices = %d after remove, want 1", srv.NumServices())
	}
	if got := srv.Spec(0).Profile.Name; got != "xapian" {
		t.Fatalf("survivor is %q, want xapian", got)
	}
	// The survivor's affinity (previously index 1) must now read as
	// index 0 on the platform, and the departed service's entries gone.
	got := srv.Platform().ServiceCores(0)
	if len(got) != len(cores)-half {
		t.Fatalf("survivor owns %d cores after remap, want %d", len(got), len(cores)-half)
	}
	if extra := srv.Platform().ServiceCores(1); len(extra) != 0 {
		t.Fatalf("stale owner entries for old index 1: %v", extra)
	}
	// And a 1-service step must run cleanly.
	res := srv.MustStep(Assignment{PerService: []Allocation{{Cores: cores[half:], FreqGHz: 1.8}}}, loads[1:])
	if len(res.Services) != 1 {
		t.Fatalf("step reports %d services, want 1", len(res.Services))
	}
}

func TestRemoveServiceOutOfRange(t *testing.T) {
	srv := membershipServer(t, "masstree")
	if err := srv.RemoveService(1); err == nil {
		t.Fatal("RemoveService(1) on a 1-service server succeeded")
	}
	if err := srv.RemoveService(-1); err == nil {
		t.Fatal("RemoveService(-1) succeeded")
	}
}

// Membership changes are rejected while fault injection is armed: the
// injector's schedule is sized to the service count at construction, so
// growing or shrinking it would change every later fault draw.
func TestMembershipChangeRejectedUnderFaults(t *testing.T) {
	fs, err := faults.Named("crash")
	if err != nil {
		t.Fatalf("faults.Named: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Faults = &fs
	srv := NewServer(cfg, []ServiceSpec{{Profile: service.MustLookup("masstree"), QoSTargetMs: 5, Seed: 1}})

	if err := srv.AddService(ServiceSpec{Profile: service.MustLookup("xapian"), Seed: 2}); !errors.Is(err, ErrFaultsArmed) {
		t.Fatalf("AddService under faults: err = %v, want ErrFaultsArmed", err)
	}
	if err := srv.RemoveService(0); !errors.Is(err, ErrFaultsArmed) {
		t.Fatalf("RemoveService under faults: err = %v, want ErrFaultsArmed", err)
	}
}
