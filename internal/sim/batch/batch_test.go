package batch

import "testing"

func TestDefaultSpec(t *testing.T) {
	s := DefaultSpec()
	if s.Name == "" {
		t.Fatal("unnamed spec")
	}
	if s.BWPerWork <= 0 || s.CacheMB <= 0 || s.Sensitivity <= 0 {
		t.Fatalf("degenerate default spec: %+v", s)
	}
	// Batch work degrades gracefully: sensitivity below the typical LC
	// services so it absorbs contention rather than amplifying it.
	if s.Sensitivity > 1 {
		t.Fatalf("batch sensitivity %v should be ≤ 1", s.Sensitivity)
	}
}

func TestStatsZeroValue(t *testing.T) {
	var st Stats
	if st.Cores != 0 || st.WorkDone != 0 {
		t.Fatal("zero value must mean no batch progress")
	}
}
