// Package batch models best-effort batch work that soaks up whatever
// cores the latency-critical services do not occupy — the colocation
// context Heracles and PARTIES were designed for, where reclaimed
// resources turn into batch throughput rather than idle power savings.
package batch

// Spec describes a best-effort batch workload.
type Spec struct {
	// Name identifies the workload ("spark-batch", "stream", ...).
	Name string
	// BWPerWork is the memory bandwidth demand in GB per unit of batch
	// work (GHz·core·seconds), pressuring the shared socket resources.
	BWPerWork float64
	// CacheMB is the LLC footprint the batch competes for.
	CacheMB float64
	// Sensitivity scales how much contention slows the batch down
	// (batch work is throughput-oriented, so it degrades gracefully).
	Sensitivity float64
}

// DefaultSpec is a bandwidth-hungry analytics batch.
func DefaultSpec() Spec {
	return Spec{Name: "analytics-batch", BWPerWork: 1.2, CacheMB: 16, Sensitivity: 0.8}
}

// Stats is the batch outcome of one interval.
type Stats struct {
	// Cores is the number of cores the batch occupied.
	Cores int
	// WorkDone is the batch work completed, in GHz·core·seconds.
	WorkDone float64
}
