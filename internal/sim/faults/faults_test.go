package faults

import (
	"reflect"
	"testing"
)

func cores() []int {
	out := make([]int, 18)
	for i := range out {
		out[i] = 18 + i
	}
	return out
}

// The headline property: the same scenario and seed reproduce the
// identical fault schedule, regardless of anything the controller does.
func TestInjectorDeterministic(t *testing.T) {
	for _, name := range Names() {
		sc := MustNamed(name)
		a := NewInjector(sc, 42, 2, cores())
		b := NewInjector(sc, 42, 2, cores())
		for i := 0; i < 1500; i++ {
			ea := append([]Event(nil), a.Advance()...)
			eb := append([]Event(nil), b.Advance()...)
			if !reflect.DeepEqual(ea, eb) {
				t.Fatalf("%s: schedules diverge at t=%d: %v vs %v", name, i, ea, eb)
			}
		}
		if !reflect.DeepEqual(a.Log(), b.Log()) {
			t.Fatalf("%s: logs differ", name)
		}
	}
}

func TestInjectorSeedMatters(t *testing.T) {
	sc := MustNamed("hostile")
	a := NewInjector(sc, 1, 2, cores())
	b := NewInjector(sc, 2, 2, cores())
	for i := 0; i < 2000; i++ {
		a.Advance()
		b.Advance()
	}
	if reflect.DeepEqual(a.Log(), b.Log()) {
		t.Fatal("different seeds produced the identical schedule")
	}
	if len(a.Log()) == 0 || len(b.Log()) == 0 {
		t.Fatal("hostile scenario scheduled no faults in 2000 intervals")
	}
}

func TestCrashEpisodesPeriodicAndRotating(t *testing.T) {
	sc := Scenario{CrashPeriodS: 100, CrashOfflineS: 7}
	inj := NewInjector(sc, 5, 3, cores())
	var crashes []Event
	for i := 0; i < 650; i++ {
		inj.Advance()
	}
	for _, e := range inj.Log() {
		if e.Kind == ServiceCrash {
			crashes = append(crashes, e)
		}
	}
	if len(crashes) != 6 {
		t.Fatalf("crashes = %d, want 6", len(crashes))
	}
	for i, e := range crashes {
		if e.Start != (i+1)*100 || e.Duration != 7 {
			t.Fatalf("crash %d at %d+%d", i, e.Start, e.Duration)
		}
		if e.Service != i%3 {
			t.Fatalf("crash %d hit service %d, want rotation", i, e.Service)
		}
	}
}

func TestZeroScenarioInjectsNothing(t *testing.T) {
	inj := NewInjector(Scenario{}, 9, 4, cores())
	for i := 0; i < 500; i++ {
		if ev := inj.Advance(); len(ev) != 0 {
			t.Fatalf("zero scenario injected %v", ev)
		}
	}
	if !(Scenario{}).IsZero() {
		t.Fatal("IsZero")
	}
	if MustNamed("sensor").IsZero() {
		t.Fatal("sensor scenario reads as zero")
	}
}

func TestEventActiveAt(t *testing.T) {
	e := Event{Start: 10, Duration: 3}
	for tt, want := range map[int]bool{9: false, 10: true, 12: true, 13: false} {
		if e.ActiveAt(tt) != want {
			t.Fatalf("ActiveAt(%d) = %v", tt, !want)
		}
	}
}

func TestNamedUnknown(t *testing.T) {
	if _, err := Named("nope"); err == nil {
		t.Fatal("expected error")
	}
	for _, n := range Names() {
		if _, err := Named(n); err != nil {
			t.Fatalf("Named(%q): %v", n, err)
		}
	}
	if MustNamed("none").Name != "none" {
		t.Fatal("none")
	}
}

func TestEventAndKindStrings(t *testing.T) {
	e := Event{Kind: CoreFail, Service: -1, Core: 21, Start: 5, Duration: 2}
	if e.String() == "" || e.Kind.String() != "core-fail" {
		t.Fatalf("strings: %q %q", e.String(), e.Kind.String())
	}
	if Kind(99).String() == "" {
		t.Fatal("out-of-range kind string")
	}
}
