// Package faults injects deterministic, seeded hardware and software
// failures into the simulated server: dropped or corrupted PMC samples,
// stale or missing tail-latency readings (log-scrape gaps), RAPL read
// failures, transient core failures, silently dropped actuation writes,
// service crash-and-restart episodes and flash-crowd load spikes. The
// paper's deployment reads counters, scrapes latencies from service logs
// and actuates DVFS/affinity on live hardware — every one of those can
// fail — and this package lets experiments measure how gracefully a
// manager degrades when they do. A Scenario plus a seed reproduces the
// identical fault schedule on every run, independently of what the
// controller under test decides.
package faults

import (
	"fmt"

	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/rng"
	"github.com/twig-sched/twig/internal/sim/pmc"
)

// Kind identifies one fault type.
type Kind int

// The fault model, one Kind per failure mode of the real deployment.
const (
	// PMCDropout loses a service's counter sample: perfmon returns all
	// zeros for the interval.
	PMCDropout Kind = iota
	// PMCCorrupt corrupts one counter of a service's sample: the reading
	// becomes NaN (Magnitude 0) or spikes by Magnitude×.
	PMCCorrupt
	// LatencyDropout loses a service's tail-latency sample: the log
	// scrape finds no fresh line and reports NaN.
	LatencyDropout
	// LatencyStale repeats the previous interval's tail-latency reading
	// (the log scraper re-reads an old line).
	LatencyStale
	// RAPLFail makes the socket power reading NaN for the interval.
	RAPLFail
	// CoreFail drops a managed core offline for the duration regardless
	// of what the controller requested; affinity writes to it are lost.
	CoreFail
	// ActuationDrop silently discards the interval's DVFS and affinity
	// writes: the previous interval's settings persist.
	ActuationDrop
	// ServiceCrash kills a service: offline for the duration (arrivals
	// rejected, in-flight requests lost, no log output), then a cold
	// restart that rebuilds its queue under degraded warm-up capacity.
	ServiceCrash
	// LoadSpike multiplies a service's offered load by Magnitude — a
	// flash crowd.
	LoadSpike
	// NodeCrash kills a whole cluster node: its simulated world is lost,
	// every hosted replica goes dark, and its heartbeats stop until the
	// outage ends, at which point the node rejoins empty. Scheduled by
	// the ClusterInjector; never appears in a per-node schedule.
	NodeCrash
	// NodePartition isolates a node from the coordinator: the node keeps
	// running its control loop but its heartbeats are lost, so its lease
	// expires, the node self-fences and the coordinator re-places its
	// replicas. Scheduled by the ClusterInjector.
	NodePartition

	numKinds
)

var kindNames = [numKinds]string{
	"pmc-dropout", "pmc-corrupt", "latency-dropout", "latency-stale",
	"rapl-fail", "core-fail", "actuation-drop", "service-crash", "load-spike",
	"node-crash", "node-partition",
}

// String names the fault kind.
func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("faults.Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Event is one concrete fault occurrence in the schedule.
type Event struct {
	Kind Kind
	// Service is the victim service index, -1 for machine-scoped faults.
	Service int
	// Core is the victim core ID (CoreFail only; -1 otherwise).
	Core int
	// Counter is the corrupted PMC index (PMCCorrupt only; -1 otherwise).
	Counter int
	// Start is the first interval the fault is active; Duration counts
	// intervals.
	Start, Duration int
	// Magnitude scales the fault effect: the load multiplier of a
	// LoadSpike, the spike factor of a PMCCorrupt (0 means the counter
	// reads NaN).
	Magnitude float64
}

// ActiveAt reports whether the event covers interval t.
func (e Event) ActiveAt(t int) bool { return t >= e.Start && t < e.Start+e.Duration }

// String renders the event compactly.
func (e Event) String() string {
	s := fmt.Sprintf("%v@%d+%d", e.Kind, e.Start, e.Duration)
	if e.Service >= 0 {
		s += fmt.Sprintf(" svc%d", e.Service)
	}
	if e.Core >= 0 {
		s += fmt.Sprintf(" core%d", e.Core)
	}
	return s
}

// Scenario parameterises a fault schedule. Rate fields are expected
// events per 1000 intervals per victim (service or core); every
// rate-scheduled event lasts 1..MaxFaultS intervals. Crash episodes are
// scheduled deterministically by period, rotating through the services.
// The zero Scenario injects nothing.
type Scenario struct {
	Name string

	PMCDropoutPerKs    float64
	PMCCorruptPerKs    float64
	LatencyDropPerKs   float64
	LatencyStalePerKs  float64
	RAPLFailPerKs      float64
	CoreFailPerKs      float64
	ActuationDropPerKs float64
	LoadSpikePerKs     float64

	// LoadSpikeFactor multiplies the offered load during a spike
	// (default 3).
	LoadSpikeFactor float64
	// MaxFaultS bounds the duration of rate-scheduled faults (default 8).
	MaxFaultS int

	// CrashPeriodS, when positive, crashes one service every period
	// (rotating through the services): offline for CrashOfflineS
	// intervals (default 10), then a cold restart whose capacity ramps
	// back up over CrashWarmupS intervals.
	CrashPeriodS  int
	CrashOfflineS int
	CrashWarmupS  int
}

// IsZero reports whether the scenario injects no faults at all.
func (sc Scenario) IsZero() bool {
	return sc.PMCDropoutPerKs == 0 && sc.PMCCorruptPerKs == 0 &&
		sc.LatencyDropPerKs == 0 && sc.LatencyStalePerKs == 0 &&
		sc.RAPLFailPerKs == 0 && sc.CoreFailPerKs == 0 &&
		sc.ActuationDropPerKs == 0 && sc.LoadSpikePerKs == 0 &&
		sc.CrashPeriodS == 0
}

func (sc Scenario) withDefaults() Scenario {
	if sc.LoadSpikeFactor <= 0 {
		sc.LoadSpikeFactor = 3
	}
	if sc.MaxFaultS <= 0 {
		sc.MaxFaultS = 8
	}
	if sc.CrashPeriodS > 0 && sc.CrashOfflineS <= 0 {
		sc.CrashOfflineS = 10
	}
	if sc.CrashPeriodS > 0 && sc.CrashWarmupS < 0 {
		sc.CrashWarmupS = 0
	}
	return sc
}

// Named returns a built-in scenario: "none", "sensor" (dropped, stale
// and corrupted measurements), "actuator" (lost DVFS/affinity writes and
// transient core failures), "crash" (periodic crash-and-restart episodes
// plus PMC corruption), "flashcrowd" (load spikes) or "hostile" (all of
// the above).
func Named(name string) (Scenario, error) {
	switch name {
	case "none", "":
		return Scenario{Name: "none"}, nil
	case "sensor":
		return Scenario{
			Name:              "sensor",
			PMCDropoutPerKs:   30,
			PMCCorruptPerKs:   20,
			LatencyDropPerKs:  30,
			LatencyStalePerKs: 20,
			RAPLFailPerKs:     30,
		}, nil
	case "actuator":
		return Scenario{
			Name:               "actuator",
			ActuationDropPerKs: 60,
			CoreFailPerKs:      8,
		}, nil
	case "crash":
		return Scenario{
			Name:            "crash",
			PMCCorruptPerKs: 25,
			CrashPeriodS:    400,
			CrashOfflineS:   15,
			CrashWarmupS:    10,
		}, nil
	case "flashcrowd":
		return Scenario{
			Name:            "flashcrowd",
			LoadSpikePerKs:  15,
			LoadSpikeFactor: 3,
		}, nil
	case "hostile":
		return Scenario{
			Name:               "hostile",
			PMCDropoutPerKs:    30,
			PMCCorruptPerKs:    20,
			LatencyDropPerKs:   30,
			LatencyStalePerKs:  20,
			RAPLFailPerKs:      30,
			ActuationDropPerKs: 40,
			CoreFailPerKs:      6,
			LoadSpikePerKs:     10,
			LoadSpikeFactor:    3,
			CrashPeriodS:       500,
			CrashOfflineS:      15,
			CrashWarmupS:       10,
		}, nil
	}
	return Scenario{}, fmt.Errorf("faults: unknown scenario %q (want one of %v)", name, Names())
}

// MustNamed is Named for known-good scenario names.
func MustNamed(name string) Scenario {
	sc, err := Named(name)
	if err != nil {
		panic(err)
	}
	return sc
}

// Names lists the built-in scenarios.
func Names() []string {
	return []string{"none", "sensor", "actuator", "crash", "flashcrowd", "hostile"}
}

// Injector turns a Scenario into a concrete, reproducible fault schedule.
// Advance must be called exactly once per simulated interval, in order;
// the schedule depends only on (Scenario, seed, victim counts), never on
// simulator or controller state, so the same inputs replay the identical
// fault sequence.
type Injector struct {
	sc    Scenario
	rng   *rng.Rand
	k     int
	cores []int

	t      int
	active []Event
	log    []Event
}

// NewInjector builds an injector for numServices services and the given
// managed core IDs.
func NewInjector(sc Scenario, seed int64, numServices int, managedCores []int) *Injector {
	return &Injector{
		sc:    sc.withDefaults(),
		rng:   rng.New(seed),
		k:     numServices,
		cores: append([]int(nil), managedCores...),
	}
}

// Advance moves to the next interval and returns the faults active in it.
// The returned slice is owned by the injector; callers must copy it to
// retain it.
func (inj *Injector) Advance() []Event {
	t := inj.t
	inj.t++

	keep := inj.active[:0]
	for _, e := range inj.active {
		if e.ActiveAt(t) {
			keep = append(keep, e)
		}
	}
	inj.active = keep

	// Rate-scheduled faults, drawn in a fixed order (kind-major, then
	// victim) so the schedule is reproducible.
	for svc := 0; svc < inj.k; svc++ {
		if inj.draw(inj.sc.PMCDropoutPerKs) {
			inj.add(Event{Kind: PMCDropout, Service: svc, Core: -1, Counter: -1,
				Start: t, Duration: inj.duration()})
		}
	}
	for svc := 0; svc < inj.k; svc++ {
		if inj.draw(inj.sc.PMCCorruptPerKs) {
			mag := 0.0 // NaN reading
			if inj.rng.Float64() < 0.5 {
				mag = 100 + inj.rng.Float64()*900 // spike
			}
			inj.add(Event{Kind: PMCCorrupt, Service: svc, Core: -1,
				Counter: inj.rng.Intn(int(pmc.NumCounters)),
				Start:   t, Duration: inj.duration(), Magnitude: mag})
		}
	}
	for svc := 0; svc < inj.k; svc++ {
		if inj.draw(inj.sc.LatencyDropPerKs) {
			inj.add(Event{Kind: LatencyDropout, Service: svc, Core: -1, Counter: -1,
				Start: t, Duration: inj.duration()})
		}
	}
	for svc := 0; svc < inj.k; svc++ {
		if inj.draw(inj.sc.LatencyStalePerKs) {
			inj.add(Event{Kind: LatencyStale, Service: svc, Core: -1, Counter: -1,
				Start: t, Duration: inj.duration()})
		}
	}
	if inj.draw(inj.sc.RAPLFailPerKs) {
		inj.add(Event{Kind: RAPLFail, Service: -1, Core: -1, Counter: -1,
			Start: t, Duration: inj.duration()})
	}
	for _, c := range inj.cores {
		if inj.draw(inj.sc.CoreFailPerKs) {
			inj.add(Event{Kind: CoreFail, Service: -1, Core: c, Counter: -1,
				Start: t, Duration: inj.duration()})
		}
	}
	if inj.draw(inj.sc.ActuationDropPerKs) {
		inj.add(Event{Kind: ActuationDrop, Service: -1, Core: -1, Counter: -1,
			Start: t, Duration: inj.duration()})
	}
	for svc := 0; svc < inj.k; svc++ {
		if inj.draw(inj.sc.LoadSpikePerKs) {
			inj.add(Event{Kind: LoadSpike, Service: svc, Core: -1, Counter: -1,
				Start: t, Duration: inj.duration(), Magnitude: inj.sc.LoadSpikeFactor})
		}
	}

	// Deterministic periodic crash episodes, rotating through services.
	if p := inj.sc.CrashPeriodS; p > 0 && inj.k > 0 && t > 0 && t%p == 0 {
		svc := (t/p - 1) % inj.k
		inj.add(Event{Kind: ServiceCrash, Service: svc, Core: -1, Counter: -1,
			Start: t, Duration: inj.sc.CrashOfflineS})
	}
	return inj.active
}

// WarmupS returns the cold-restart warm-up length of crash episodes.
func (inj *Injector) WarmupS() int { return inj.sc.CrashWarmupS }

// Clock returns the number of intervals advanced so far.
func (inj *Injector) Clock() int { return inj.t }

// Log returns every event ever scheduled, in schedule order.
func (inj *Injector) Log() []Event { return append([]Event(nil), inj.log...) }

func (inj *Injector) draw(ratePerKs float64) bool {
	return ratePerKs > 0 && inj.rng.Float64() < ratePerKs/1000
}

func (inj *Injector) duration() int {
	return 1 + inj.rng.Intn(inj.sc.MaxFaultS)
}

func (inj *Injector) add(e Event) {
	inj.active = append(inj.active, e)
	inj.log = append(inj.log, e)
}

func encodeEvent(e *checkpoint.Encoder, ev Event) {
	e.Int(int(ev.Kind))
	e.Int(ev.Service)
	e.Int(ev.Core)
	e.Int(ev.Counter)
	e.Int(ev.Start)
	e.Int(ev.Duration)
	e.F64(ev.Magnitude)
}

func decodeEvent(d *checkpoint.Decoder) (Event, error) {
	ev := Event{
		Kind:      Kind(d.Int()),
		Service:   d.Int(),
		Core:      d.Int(),
		Counter:   d.Int(),
		Start:     d.Int(),
		Duration:  d.Int(),
		Magnitude: d.F64(),
	}
	if err := d.Err(); err != nil {
		return Event{}, err
	}
	if ev.Kind < 0 || ev.Kind >= numKinds {
		return Event{}, fmt.Errorf("faults: unknown fault kind %d in checkpoint", int(ev.Kind))
	}
	return ev, nil
}

const eventEncodedBytes = 7 * 8

func encodeEvents(e *checkpoint.Encoder, evs []Event) {
	e.Int(len(evs))
	for _, ev := range evs {
		encodeEvent(e, ev)
	}
}

func decodeEvents(d *checkpoint.Decoder) ([]Event, error) {
	n := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n < 0 || n*eventEncodedBytes > d.Remaining() {
		return nil, fmt.Errorf("faults: event list length %d exceeds payload", n)
	}
	var evs []Event
	for i := 0; i < n; i++ {
		ev, err := decodeEvent(d)
		if err != nil {
			return nil, err
		}
		evs = append(evs, ev)
	}
	return evs, nil
}

// EncodeState writes the injector's schedule position: interval clock,
// currently active events, the full event log (so Log() survives a
// restore) and the RNG position. The scenario itself is configuration
// and is re-supplied at construction; its name goes in as a fingerprint.
func (inj *Injector) EncodeState(e *checkpoint.Encoder) {
	e.String(inj.sc.Name)
	e.Int(inj.k)
	e.Int(inj.t)
	encodeEvents(e, inj.active)
	encodeEvents(e, inj.log)
	inj.rng.Source().EncodeState(e)
}

// DecodeState restores schedule position into an injector built with the
// same scenario and victim counts.
func (inj *Injector) DecodeState(d *checkpoint.Decoder) error {
	name := d.String()
	k := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if name != inj.sc.Name {
		return fmt.Errorf("faults: checkpoint is for scenario %q, injector runs %q", name, inj.sc.Name)
	}
	if k != inj.k {
		return fmt.Errorf("faults: checkpoint covers %d services, injector has %d", k, inj.k)
	}
	inj.t = d.Int()
	var err error
	if inj.active, err = decodeEvents(d); err != nil {
		return err
	}
	if inj.log, err = decodeEvents(d); err != nil {
		return err
	}
	return inj.rng.Source().DecodeState(d)
}
