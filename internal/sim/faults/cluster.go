package faults

import (
	"fmt"

	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/rng"
)

// NodeEvent is one whole-node fault occurrence in a cluster schedule:
// a crash (world lost, heartbeats stop, node rejoins empty) or a
// partition (node keeps running but its heartbeats are lost).
type NodeEvent struct {
	Kind Kind // NodeCrash or NodePartition
	Node int
	// Start is the first interval the outage covers; Duration counts
	// intervals.
	Start, Duration int
}

// ActiveAt reports whether the event covers interval t.
func (e NodeEvent) ActiveAt(t int) bool { return t >= e.Start && t < e.Start+e.Duration }

// String renders the event compactly.
func (e NodeEvent) String() string {
	return fmt.Sprintf("%v@%d+%d node%d", e.Kind, e.Start, e.Duration, e.Node)
}

// ClusterScenario parameterises a whole-node fault schedule, the fleet
// counterpart of Scenario. Crash episodes are scheduled
// deterministically by period, rotating through the nodes; rate fields
// are expected events per 1000 intervals per node. The zero
// ClusterScenario injects nothing.
type ClusterScenario struct {
	Name string

	// CrashPeriodS, when positive, crashes one node every period
	// (rotating through the nodes), offline for CrashOfflineS intervals
	// (default 20).
	CrashPeriodS  int
	CrashOfflineS int

	// PartitionPeriodS, when positive, partitions one node every period
	// (rotating through the nodes on a different phase than the crash
	// rotation) for PartitionOfflineS intervals (default 20).
	PartitionPeriodS  int
	PartitionOfflineS int

	// CrashPerKs adds rate-scheduled random node crashes on top of the
	// periodic rotation; PartitionPerKs schedules network partitions.
	// Either outage lasts 1..MaxOutageS intervals (default 25).
	CrashPerKs     float64
	PartitionPerKs float64
	MaxOutageS     int

	// QuietAfterS, when positive, stops scheduling new outages at that
	// interval, so a bounded sweep ends with a settle window in which
	// every placement can resolve (the chaos experiment's invariant
	// needs one).
	QuietAfterS int
}

// IsZero reports whether the scenario injects no node faults at all.
func (sc ClusterScenario) IsZero() bool {
	return sc.CrashPeriodS == 0 && sc.PartitionPeriodS == 0 &&
		sc.CrashPerKs == 0 && sc.PartitionPerKs == 0
}

func (sc ClusterScenario) withDefaults() ClusterScenario {
	if sc.CrashPeriodS > 0 && sc.CrashOfflineS <= 0 {
		sc.CrashOfflineS = 20
	}
	if sc.PartitionPeriodS > 0 && sc.PartitionOfflineS <= 0 {
		sc.PartitionOfflineS = 20
	}
	if sc.MaxOutageS <= 0 {
		sc.MaxOutageS = 25
	}
	return sc
}

// NamedCluster returns a built-in whole-node scenario: "none",
// "nodecrash" (periodic rotating node crashes), "partition" (random
// network partitions) or "chaos" (periodic crashes plus random crashes
// and partitions).
func NamedCluster(name string) (ClusterScenario, error) {
	switch name {
	case "none", "":
		return ClusterScenario{Name: "none"}, nil
	case "nodecrash":
		return ClusterScenario{
			Name:          "nodecrash",
			CrashPeriodS:  300,
			CrashOfflineS: 25,
		}, nil
	case "partition":
		return ClusterScenario{
			Name:           "partition",
			PartitionPerKs: 4,
			MaxOutageS:     20,
		}, nil
	case "chaos":
		return ClusterScenario{
			Name:           "chaos",
			CrashPeriodS:   250,
			CrashOfflineS:  25,
			CrashPerKs:     2,
			PartitionPerKs: 3,
			MaxOutageS:     20,
		}, nil
	}
	return ClusterScenario{}, fmt.Errorf("faults: unknown cluster scenario %q (want one of %v)", name, ClusterNames())
}

// MustNamedCluster is NamedCluster for known-good scenario names.
func MustNamedCluster(name string) ClusterScenario {
	sc, err := NamedCluster(name)
	if err != nil {
		panic(err)
	}
	return sc
}

// ClusterNames lists the built-in whole-node scenarios.
func ClusterNames() []string {
	return []string{"none", "nodecrash", "partition", "chaos"}
}

// ClusterInjector turns a ClusterScenario into a concrete, reproducible
// whole-node fault schedule, exactly as Injector does for per-node
// faults: Advance must be called once per interval, in order, and the
// schedule depends only on (scenario, seed, node count) — never on what
// the coordinator or the nodes decide.
type ClusterInjector struct {
	sc    ClusterScenario
	rng   *rng.Rand
	nodes int

	t      int
	active []NodeEvent
	log    []NodeEvent
}

// NewClusterInjector builds an injector for a fleet of the given size.
func NewClusterInjector(sc ClusterScenario, seed int64, nodes int) *ClusterInjector {
	return &ClusterInjector{sc: sc.withDefaults(), rng: rng.New(seed), nodes: nodes}
}

// Advance moves to the next interval and returns the node outages active
// in it. The returned slice is owned by the injector; callers must copy
// it to retain it.
func (inj *ClusterInjector) Advance() []NodeEvent {
	t := inj.t
	inj.t++

	keep := inj.active[:0]
	for _, e := range inj.active {
		if e.ActiveAt(t) {
			keep = append(keep, e)
		}
	}
	inj.active = keep

	quiet := inj.sc.QuietAfterS > 0 && t >= inj.sc.QuietAfterS

	// Rate-scheduled outages, drawn in a fixed order (kind-major, then
	// node) so the schedule is reproducible. Draws happen even in the
	// quiet tail so the RNG position — and therefore a resumed run —
	// does not depend on where the quiet boundary fell.
	for n := 0; n < inj.nodes; n++ {
		if inj.draw(inj.sc.CrashPerKs) && !quiet {
			inj.add(NodeEvent{Kind: NodeCrash, Node: n, Start: t, Duration: inj.duration()})
		}
	}
	for n := 0; n < inj.nodes; n++ {
		if inj.draw(inj.sc.PartitionPerKs) && !quiet {
			inj.add(NodeEvent{Kind: NodePartition, Node: n, Start: t, Duration: inj.duration()})
		}
	}

	// Deterministic periodic episodes, rotating through nodes; the
	// partition rotation runs one node ahead of the crash rotation so
	// coincident periods hit different victims.
	if p := inj.sc.CrashPeriodS; p > 0 && inj.nodes > 0 && t > 0 && t%p == 0 && !quiet {
		n := (t/p - 1) % inj.nodes
		inj.add(NodeEvent{Kind: NodeCrash, Node: n, Start: t, Duration: inj.sc.CrashOfflineS})
	}
	if p := inj.sc.PartitionPeriodS; p > 0 && inj.nodes > 0 && t > 0 && t%p == 0 && !quiet {
		n := (t / p) % inj.nodes
		inj.add(NodeEvent{Kind: NodePartition, Node: n, Start: t, Duration: inj.sc.PartitionOfflineS})
	}
	return inj.active
}

// Clock returns the number of intervals advanced so far.
func (inj *ClusterInjector) Clock() int { return inj.t }

// Log returns every outage ever scheduled, in schedule order.
func (inj *ClusterInjector) Log() []NodeEvent { return append([]NodeEvent(nil), inj.log...) }

func (inj *ClusterInjector) draw(ratePerKs float64) bool {
	return ratePerKs > 0 && inj.rng.Float64() < ratePerKs/1000
}

func (inj *ClusterInjector) duration() int {
	return 1 + inj.rng.Intn(inj.sc.MaxOutageS)
}

func (inj *ClusterInjector) add(e NodeEvent) {
	inj.active = append(inj.active, e)
	inj.log = append(inj.log, e)
}

func encodeNodeEvent(e *checkpoint.Encoder, ev NodeEvent) {
	e.Int(int(ev.Kind))
	e.Int(ev.Node)
	e.Int(ev.Start)
	e.Int(ev.Duration)
}

func decodeNodeEvent(d *checkpoint.Decoder) (NodeEvent, error) {
	ev := NodeEvent{
		Kind:     Kind(d.Int()),
		Node:     d.Int(),
		Start:    d.Int(),
		Duration: d.Int(),
	}
	if err := d.Err(); err != nil {
		return NodeEvent{}, err
	}
	if ev.Kind != NodeCrash && ev.Kind != NodePartition {
		return NodeEvent{}, fmt.Errorf("faults: kind %v is not a node fault", ev.Kind)
	}
	return ev, nil
}

const nodeEventEncodedBytes = 4 * 8

func encodeNodeEvents(e *checkpoint.Encoder, evs []NodeEvent) {
	e.Int(len(evs))
	for _, ev := range evs {
		encodeNodeEvent(e, ev)
	}
}

func decodeNodeEvents(d *checkpoint.Decoder) ([]NodeEvent, error) {
	n := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n < 0 || n*nodeEventEncodedBytes > d.Remaining() {
		return nil, fmt.Errorf("faults: node-event list length %d exceeds payload", n)
	}
	var evs []NodeEvent
	for i := 0; i < n; i++ {
		ev, err := decodeNodeEvent(d)
		if err != nil {
			return nil, err
		}
		evs = append(evs, ev)
	}
	return evs, nil
}

// EncodeState writes the injector's schedule position: interval clock,
// active outages, the full log and the RNG position. The scenario is
// configuration, re-supplied at construction; its name goes in as a
// fingerprint.
func (inj *ClusterInjector) EncodeState(e *checkpoint.Encoder) {
	e.String(inj.sc.Name)
	e.Int(inj.nodes)
	e.Int(inj.t)
	encodeNodeEvents(e, inj.active)
	encodeNodeEvents(e, inj.log)
	inj.rng.Source().EncodeState(e)
}

// DecodeState restores schedule position into an injector built with
// the same scenario and fleet size.
func (inj *ClusterInjector) DecodeState(d *checkpoint.Decoder) error {
	name := d.String()
	nodes := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if name != inj.sc.Name {
		return fmt.Errorf("faults: checkpoint is for cluster scenario %q, injector runs %q", name, inj.sc.Name)
	}
	if nodes != inj.nodes {
		return fmt.Errorf("faults: checkpoint covers %d nodes, injector has %d", nodes, inj.nodes)
	}
	inj.t = d.Int()
	var err error
	if inj.active, err = decodeNodeEvents(d); err != nil {
		return err
	}
	if inj.log, err = decodeNodeEvents(d); err != nil {
		return err
	}
	return inj.rng.Source().DecodeState(d)
}
