package faults

import (
	"reflect"
	"testing"

	"github.com/twig-sched/twig/internal/checkpoint"
)

func TestClusterNamedScenarios(t *testing.T) {
	for _, name := range ClusterNames() {
		sc, err := NamedCluster(name)
		if err != nil {
			t.Fatalf("NamedCluster(%q): %v", name, err)
		}
		if name != "none" && sc.IsZero() {
			t.Errorf("scenario %q injects nothing", name)
		}
	}
	if _, err := NamedCluster("flood"); err == nil {
		t.Fatal("NamedCluster accepted an unknown name")
	}
}

func TestClusterInjectorDeterministic(t *testing.T) {
	sc := MustNamedCluster("chaos")
	a := NewClusterInjector(sc, 7, 4)
	b := NewClusterInjector(sc, 7, 4)
	for i := 0; i < 2000; i++ {
		ea := append([]NodeEvent(nil), a.Advance()...)
		eb := append([]NodeEvent(nil), b.Advance()...)
		if !reflect.DeepEqual(ea, eb) {
			t.Fatalf("interval %d: schedules diverge: %v vs %v", i, ea, eb)
		}
	}
	if len(a.Log()) == 0 {
		t.Fatal("chaos scenario scheduled no node events in 2000 intervals")
	}
	c := NewClusterInjector(sc, 8, 4)
	for i := 0; i < 2000; i++ {
		c.Advance()
	}
	if reflect.DeepEqual(a.Log(), c.Log()) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestClusterInjectorCoversAllNodesAndKinds(t *testing.T) {
	inj := NewClusterInjector(MustNamedCluster("chaos"), 3, 3)
	for i := 0; i < 3000; i++ {
		inj.Advance()
	}
	seenNode := map[int]bool{}
	seenKind := map[Kind]bool{}
	for _, e := range inj.Log() {
		seenNode[e.Node] = true
		seenKind[e.Kind] = true
		if e.Node < 0 || e.Node >= 3 {
			t.Fatalf("event %v targets node out of range", e)
		}
		if e.Duration <= 0 {
			t.Fatalf("event %v has non-positive duration", e)
		}
	}
	for n := 0; n < 3; n++ {
		if !seenNode[n] {
			t.Errorf("node %d never faulted in 3000 chaos intervals", n)
		}
	}
	if !seenKind[NodeCrash] || !seenKind[NodePartition] {
		t.Errorf("kinds seen %v; want both node-crash and node-partition", seenKind)
	}
}

func TestClusterInjectorQuietTail(t *testing.T) {
	sc := MustNamedCluster("chaos")
	sc.QuietAfterS = 500
	inj := NewClusterInjector(sc, 11, 4)
	for i := 0; i < 1000; i++ {
		inj.Advance()
	}
	for _, e := range inj.Log() {
		if e.Start >= 500 {
			t.Fatalf("event %v scheduled after quiet boundary", e)
		}
	}
	// The tail is genuinely quiet once pre-boundary outages drain.
	if got := inj.Advance(); len(got) != 0 {
		t.Fatalf("outages still active at interval 1000: %v", got)
	}
}

func TestClusterInjectorCheckpointRoundTrip(t *testing.T) {
	sc := MustNamedCluster("chaos")
	ref := NewClusterInjector(sc, 5, 4)
	cut := NewClusterInjector(sc, 5, 4)
	for i := 0; i < 600; i++ {
		ref.Advance()
		cut.Advance()
	}

	e := checkpoint.NewEncoder()
	cut.EncodeState(e)
	restored := NewClusterInjector(sc, 999, 4) // wrong seed: state must win
	d := checkpoint.NewDecoder(e.Bytes())
	if err := restored.DecodeState(d); err != nil {
		t.Fatalf("DecodeState: %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d trailing bytes after decode", d.Remaining())
	}

	for i := 0; i < 600; i++ {
		want := append([]NodeEvent(nil), ref.Advance()...)
		got := append([]NodeEvent(nil), restored.Advance()...)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("interval %d after restore: %v, want %v", 600+i, got, want)
		}
	}
	if !reflect.DeepEqual(ref.Log(), restored.Log()) {
		t.Fatal("restored injector's log diverged from the reference")
	}
}

func TestClusterInjectorDecodeRejectsMismatch(t *testing.T) {
	src := NewClusterInjector(MustNamedCluster("nodecrash"), 1, 4)
	src.Advance()
	e := checkpoint.NewEncoder()
	src.EncodeState(e)

	wrongScenario := NewClusterInjector(MustNamedCluster("chaos"), 1, 4)
	if err := wrongScenario.DecodeState(checkpoint.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("DecodeState accepted a checkpoint for a different scenario")
	}
	wrongNodes := NewClusterInjector(MustNamedCluster("nodecrash"), 1, 8)
	if err := wrongNodes.DecodeState(checkpoint.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("DecodeState accepted a checkpoint for a different fleet size")
	}
}
