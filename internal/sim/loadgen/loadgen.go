// Package loadgen generates the request-rate curves of the evaluation:
// fixed loads (20/50/80% of maximum), the step-wise monotonic varying
// load of Figs. 10–11 (change factor 20%, steps every 200 s), and the
// diurnal pattern common in data centres.
package loadgen

import "math"

// Pattern yields the offered load, in requests per second, at a given
// simulated second.
type Pattern interface {
	RPS(t int) float64
}

// Fixed is a constant load.
type Fixed float64

// RPS returns the constant rate.
func (f Fixed) RPS(int) float64 { return float64(f) }

// Step holds the load of one phase of a piecewise-constant pattern.
type Step struct {
	DurationS int
	RPS       float64
}

// Piecewise cycles through explicit steps (repeating after the last).
type Piecewise struct {
	Steps []Step
	total int
}

// NewPiecewise builds a repeating piecewise-constant pattern.
func NewPiecewise(steps []Step) *Piecewise {
	p := &Piecewise{Steps: steps}
	for _, s := range steps {
		p.total += s.DurationS
	}
	return p
}

// RPS returns the load of the step containing second t.
func (p *Piecewise) RPS(t int) float64 {
	if p.total == 0 {
		return 0
	}
	t %= p.total
	for _, s := range p.Steps {
		if t < s.DurationS {
			return s.RPS
		}
		t -= s.DurationS
	}
	return p.Steps[len(p.Steps)-1].RPS
}

// StepWise is the paper's varying-load generator (Sec. V-B1): the load
// starts at MinRPS and is multiplied by ChangeFactor every PeriodS
// seconds until it reaches MaxRPS, then divided by the factor back down
// to MinRPS, cycling. ChangeFactor is expressed as the fractional change
// (0.2 = ±20%).
type StepWise struct {
	MinRPS, MaxRPS float64
	ChangeFactor   float64
	PeriodS        int

	levels []float64
}

// NewStepWise constructs the generator, precomputing the load ladder.
func NewStepWise(minRPS, maxRPS, changeFactor float64, periodS int) *StepWise {
	if minRPS <= 0 || maxRPS < minRPS || changeFactor <= 0 || periodS <= 0 {
		panic("loadgen: invalid StepWise parameters")
	}
	s := &StepWise{MinRPS: minRPS, MaxRPS: maxRPS, ChangeFactor: changeFactor, PeriodS: periodS}
	up := []float64{minRPS}
	for l := minRPS * (1 + changeFactor); l < maxRPS; l *= 1 + changeFactor {
		up = append(up, l)
	}
	up = append(up, maxRPS)
	// Ascend then descend (excluding the repeated endpoints).
	s.levels = append(s.levels, up...)
	for i := len(up) - 2; i > 0; i-- {
		s.levels = append(s.levels, up[i])
	}
	return s
}

// RPS returns the ladder level active at second t.
func (s *StepWise) RPS(t int) float64 {
	step := (t / s.PeriodS) % len(s.levels)
	return s.levels[step]
}

// Levels exposes the precomputed ladder (useful for tests and plots).
func (s *StepWise) Levels() []float64 { return append([]float64(nil), s.levels...) }

// Diurnal is a day/night sinusoid: load oscillates between MinRPS and
// MaxRPS with the given period (86400 s for a day).
type Diurnal struct {
	MinRPS, MaxRPS float64
	PeriodS        int
	// PhaseS shifts the peak; with 0 the pattern starts at the mean
	// load heading towards the peak.
	PhaseS int
}

// RPS returns the sinusoidal load at second t.
func (d Diurnal) RPS(t int) float64 {
	if d.PeriodS <= 0 {
		return d.MinRPS
	}
	mid := (d.MinRPS + d.MaxRPS) / 2
	amp := (d.MaxRPS - d.MinRPS) / 2
	phase := 2 * math.Pi * float64(t+d.PhaseS) / float64(d.PeriodS)
	return mid + amp*math.Sin(phase)
}
