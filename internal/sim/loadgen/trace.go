package loadgen

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ErrBadRPS marks a trace row whose rps value is not a load a server can
// be offered: NaN, infinite, or negative. Callers match it with
// errors.Is to distinguish malformed load values from structural CSV
// errors.
var ErrBadRPS = errors.New("loadgen: bad rps value")

// Trace replays a recorded load series: one RPS value per second,
// optionally time-stamped. It lets the harness drive the simulator with
// production-style traces (e.g. exported cluster monitoring data)
// instead of synthetic patterns.
type Trace struct {
	rps []float64
	// Loop controls behaviour past the end: repeat from the start
	// (true) or hold the final value (false).
	Loop bool
}

// NewTrace wraps an explicit series.
func NewTrace(rps []float64, loop bool) *Trace {
	return &Trace{rps: append([]float64(nil), rps...), Loop: loop}
}

// ReadTrace parses a CSV load trace. Accepted shapes:
//
//	rps            one column, one row per second
//	t,rps          two columns; t is informational and must ascend
//
// A header row is skipped if its first field is not numeric. Blank lines
// are ignored.
func ReadTrace(r io.Reader, loop bool) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var rps []float64
	lastT := -1.0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("loadgen: reading trace: %w", err)
		}
		if len(rec) == 0 {
			continue
		}
		first := strings.TrimSpace(rec[0])
		if first == "" {
			continue
		}
		if _, err := strconv.ParseFloat(first, 64); err != nil {
			if len(rps) == 0 {
				continue // header
			}
			return nil, fmt.Errorf("loadgen: non-numeric trace row %v", rec)
		}
		var v float64
		switch len(rec) {
		case 1:
			v, _ = strconv.ParseFloat(first, 64)
		default:
			t, _ := strconv.ParseFloat(first, 64)
			if math.IsNaN(t) || math.IsInf(t, 0) {
				return nil, fmt.Errorf("loadgen: row %d: non-finite timestamp %q", len(rps)+1, first)
			}
			if t <= lastT {
				return nil, fmt.Errorf("loadgen: trace timestamps must ascend (%v after %v)", t, lastT)
			}
			lastT = t
			v, err = strconv.ParseFloat(strings.TrimSpace(rec[1]), 64)
			if err != nil {
				return nil, fmt.Errorf("loadgen: bad rps %q", rec[1])
			}
		}
		// strconv.ParseFloat happily accepts "NaN" and "Inf"; neither is
		// a load a server can be offered, so reject them with the row.
		switch {
		case math.IsNaN(v):
			return nil, fmt.Errorf("%w: row %d: rps is NaN", ErrBadRPS, len(rps)+1)
		case math.IsInf(v, 0):
			return nil, fmt.Errorf("%w: row %d: rps is infinite", ErrBadRPS, len(rps)+1)
		case v < 0:
			return nil, fmt.Errorf("%w: row %d: negative rps %v", ErrBadRPS, len(rps)+1, v)
		}
		rps = append(rps, v)
	}
	if len(rps) == 0 {
		return nil, fmt.Errorf("loadgen: empty trace")
	}
	return NewTrace(rps, loop), nil
}

// Len returns the trace length in seconds.
func (tr *Trace) Len() int { return len(tr.rps) }

// RPS implements Pattern.
func (tr *Trace) RPS(t int) float64 {
	if len(tr.rps) == 0 {
		return 0
	}
	if t < 0 {
		t = 0
	}
	if t >= len(tr.rps) {
		if tr.Loop {
			t %= len(tr.rps)
		} else {
			t = len(tr.rps) - 1
		}
	}
	return tr.rps[t]
}
