package loadgen

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestFixed(t *testing.T) {
	var p Pattern = Fixed(123)
	if p.RPS(0) != 123 || p.RPS(9999) != 123 {
		t.Fatal("Fixed must be constant")
	}
}

func TestPiecewise(t *testing.T) {
	p := NewPiecewise([]Step{{DurationS: 10, RPS: 100}, {DurationS: 5, RPS: 200}})
	if p.RPS(0) != 100 || p.RPS(9) != 100 {
		t.Fatal("first step")
	}
	if p.RPS(10) != 200 || p.RPS(14) != 200 {
		t.Fatal("second step")
	}
	if p.RPS(15) != 100 { // wraps
		t.Fatal("wrap-around")
	}
	empty := NewPiecewise(nil)
	if empty.RPS(3) != 0 {
		t.Fatal("empty piecewise")
	}
}

func TestStepWiseLadder(t *testing.T) {
	s := NewStepWise(100, 500, 0.2, 200)
	levels := s.Levels()
	if levels[0] != 100 {
		t.Fatalf("ladder start = %v", levels[0])
	}
	// Ascend strictly to the max, then descend.
	peak := 0
	for i := 1; i < len(levels); i++ {
		if levels[i] > levels[peak] {
			peak = i
		}
	}
	if levels[peak] != 500 {
		t.Fatalf("peak = %v", levels[peak])
	}
	for i := 1; i <= peak; i++ {
		if levels[i] <= levels[i-1] {
			t.Fatalf("not ascending at %d: %v", i, levels)
		}
	}
	for i := peak + 1; i < len(levels); i++ {
		if levels[i] >= levels[i-1] {
			t.Fatalf("not descending at %d: %v", i, levels)
		}
	}
	// Steps change exactly every PeriodS seconds.
	if s.RPS(0) != s.RPS(199) {
		t.Fatal("load must hold within a period")
	}
	if s.RPS(199) == s.RPS(200) {
		t.Fatal("load must change at the period boundary")
	}
	// Cycles.
	total := len(levels) * 200
	if s.RPS(5) != s.RPS(total+5) {
		t.Fatal("pattern must cycle")
	}
}

func TestStepWiseChangeFactor(t *testing.T) {
	s := NewStepWise(100, 1000, 0.2, 100)
	lv := s.Levels()
	for i := 1; i < len(lv) && lv[i] > lv[i-1]; i++ {
		ratio := lv[i] / lv[i-1]
		if ratio > 1.2+1e-9 {
			t.Fatalf("ascending ratio %v exceeds change factor", ratio)
		}
	}
}

func TestStepWiseInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStepWise(0, 100, 0.2, 10)
}

func TestDiurnal(t *testing.T) {
	d := Diurnal{MinRPS: 100, MaxRPS: 300, PeriodS: 86400}
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for ts := 0; ts < 86400; ts += 600 {
		v := d.RPS(ts)
		if v < 100-1e-9 || v > 300+1e-9 {
			t.Fatalf("RPS(%d) = %v out of range", ts, v)
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo > 105 || hi < 295 {
		t.Fatalf("diurnal range [%v, %v] too narrow", lo, hi)
	}
	// Periodicity.
	if math.Abs(d.RPS(100)-d.RPS(100+86400)) > 1e-9 {
		t.Fatal("diurnal must repeat daily")
	}
	flat := Diurnal{MinRPS: 50, MaxRPS: 60, PeriodS: 0}
	if flat.RPS(10) != 50 {
		t.Fatal("zero period falls back to MinRPS")
	}
}

func TestTraceReplay(t *testing.T) {
	tr := NewTrace([]float64{10, 20, 30}, false)
	if tr.Len() != 3 {
		t.Fatal("Len")
	}
	if tr.RPS(0) != 10 || tr.RPS(2) != 30 {
		t.Fatal("replay")
	}
	if tr.RPS(99) != 30 {
		t.Fatal("hold final value")
	}
	if tr.RPS(-1) != 10 {
		t.Fatal("negative time clamps")
	}
	loop := NewTrace([]float64{10, 20, 30}, true)
	if loop.RPS(4) != 20 {
		t.Fatal("loop")
	}
}

func TestReadTraceSingleColumn(t *testing.T) {
	tr, err := ReadTrace(strings.NewReader("rps\n100\n200\n300\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 || tr.RPS(1) != 200 {
		t.Fatalf("trace = %v", tr)
	}
}

func TestReadTraceTwoColumns(t *testing.T) {
	tr, err := ReadTrace(strings.NewReader("t,rps\n0,100\n1,150\n2,125\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	if tr.RPS(2) != 125 || tr.RPS(3) != 100 {
		t.Fatal("two-column trace")
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []struct {
		name    string
		input   string
		wantErr string
		// badRPS marks rows rejected for an unusable load value; those
		// must match the named ErrBadRPS, structural errors must not.
		badRPS bool
	}{
		{"empty", "", "empty trace", false},
		{"header only", "rps\n", "empty trace", false},
		{"non-ascending timestamps", "t,rps\n1,100\n1,200", "ascend", false},
		{"bad rps", "t,rps\n0,abc", "bad rps", false},
		{"negative", "rps\n-5", "negative rps", true},
		{"non-numeric after data", "rps\n100\ngarbage", "non-numeric", false},
		{"NaN rps", "rps\n100\nNaN", "NaN", true},
		{"infinite rps", "rps\n100\nInf", "infinite", true},
		{"negative infinity", "rps\n100\n-Inf", "infinite", true},
		{"NaN rps two-column", "t,rps\n0,100\n1,nan", "NaN", true},
		{"infinite rps two-column", "t,rps\n0,100\n1,+Inf", "infinite", true},
		{"negative two-column", "t,rps\n0,100\n1,-3", "negative rps", true},
		{"NaN timestamp", "t,rps\nNaN,100", "non-finite timestamp", false},
		{"infinite timestamp", "t,rps\nInf,100", "non-finite timestamp", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadTrace(strings.NewReader(tc.input), false)
			if err == nil {
				t.Fatalf("input %q should error", tc.input)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
			if got := errors.Is(err, ErrBadRPS); got != tc.badRPS {
				t.Fatalf("errors.Is(err, ErrBadRPS) = %v, want %v for %q", got, tc.badRPS, err)
			}
		})
	}
}
