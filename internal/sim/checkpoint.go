package sim

import (
	"fmt"
	"sort"

	"github.com/twig-sched/twig/internal/checkpoint"
)

// EncodeAssignment serialises an assignment (exported because the Twig
// manager's checkpoint carries its previous decision and twigd carries
// the loop's last valid assignment).
func EncodeAssignment(e *checkpoint.Encoder, asg Assignment) {
	e.Bool(asg.PerService != nil)
	e.Int(len(asg.PerService))
	for _, a := range asg.PerService {
		e.Ints(a.Cores)
		e.F64(a.FreqGHz)
		e.Int(a.CacheWays)
	}
	e.F64(asg.IdleFreqGHz)
}

// DecodeAssignment reads an assignment written by EncodeAssignment.
func DecodeAssignment(d *checkpoint.Decoder) (Assignment, error) {
	have := d.Bool()
	n := d.Int()
	if err := d.Err(); err != nil {
		return Assignment{}, err
	}
	if n < 0 || n*(4+8+8) > d.Remaining() {
		return Assignment{}, fmt.Errorf("sim: assignment claims %d services", n)
	}
	var asg Assignment
	if have {
		asg.PerService = make([]Allocation, 0, n)
	}
	for i := 0; i < n; i++ {
		asg.PerService = append(asg.PerService, Allocation{
			Cores:     d.Ints(),
			FreqGHz:   d.F64(),
			CacheWays: d.Int(),
		})
	}
	asg.IdleFreqGHz = d.F64()
	return asg, d.Err()
}

func encodeServiceStats(e *checkpoint.Encoder, sv ServiceStats) {
	e.Int(sv.Arrivals)
	e.Int(sv.Completed)
	e.F64(sv.P99Ms)
	e.F64(sv.P95Ms)
	e.F64(sv.MeanMs)
	e.F64(sv.MaxMs)
	e.Int(sv.QueueLen)
	e.F64(sv.WorkDone)
	e.F64(sv.BusySeconds)
	e.F64(sv.CapacityGHz)
	e.Int(sv.Dropped)
	e.F64(sv.InflationApplied)
	for _, v := range sv.PMCs {
		e.F64(v)
	}
	for _, v := range sv.NormPMCs {
		e.F64(v)
	}
	e.F64(sv.QoSTargetMs)
	e.Int(sv.NumCores)
	e.F64(sv.FreqGHz)
	e.F64(sv.OfferedRPS)
}

func decodeServiceStats(d *checkpoint.Decoder) ServiceStats {
	var sv ServiceStats
	sv.Arrivals = d.Int()
	sv.Completed = d.Int()
	sv.P99Ms = d.F64()
	sv.P95Ms = d.F64()
	sv.MeanMs = d.F64()
	sv.MaxMs = d.F64()
	sv.QueueLen = d.Int()
	sv.WorkDone = d.F64()
	sv.BusySeconds = d.F64()
	sv.CapacityGHz = d.F64()
	sv.Dropped = d.Int()
	sv.InflationApplied = d.F64()
	for i := range sv.PMCs {
		sv.PMCs[i] = d.F64()
	}
	for i := range sv.NormPMCs {
		sv.NormPMCs[i] = d.F64()
	}
	sv.QoSTargetMs = d.F64()
	sv.NumCores = d.Int()
	sv.FreqGHz = d.F64()
	sv.OfferedRPS = d.F64()
	return sv
}

// CheckpointName implements checkpoint.Checkpointable.
func (s *Server) CheckpointName() string { return "sim-server" }

// EncodeState writes the complete simulated-world state: clock and
// energy accumulators, platform core states, every service instance's
// queue/window/RNG, measurement-noise RNG positions, the fault
// injector's schedule position, and the crash/warm-up/stale-latency
// bookkeeping. Restoring all of it is what makes a resumed run's CSV
// byte-identical — the observable metrics (power, p99) depend on this
// state, not just on the learner's.
func (s *Server) EncodeState(e *checkpoint.Encoder) {
	e.Int(len(s.insts))
	e.Int(s.clock)
	e.F64(s.energyJ)
	e.F64(s.batchWorkJ)
	s.plat.EncodeState(e)
	for _, inst := range s.insts {
		inst.EncodeState(e)
	}
	s.powSrc.EncodeState(e)
	s.synthSrc.EncodeState(e)

	e.Bool(s.inj != nil)
	if s.inj != nil {
		s.inj.EncodeState(e)
	}
	downed := make([]int, 0, len(s.downed))
	for c := range s.downed {
		downed = append(downed, c)
	}
	sort.Ints(downed)
	e.Ints(downed)
	e.Bool(s.haveApplied)
	EncodeAssignment(e, s.appliedAsg)
	e.Bools(s.crashPrev)
	e.Ints(s.warmupLeft)
	for _, sv := range s.lastLat {
		encodeServiceStats(e, sv)
	}
	e.Bools(s.haveLat)
}

// DecodeState restores state written by EncodeState into a server
// constructed with the same configuration and service specs.
func (s *Server) DecodeState(d *checkpoint.Decoder) error {
	k := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if k != len(s.insts) {
		return fmt.Errorf("sim: checkpoint covers %d services, server hosts %d", k, len(s.insts))
	}
	s.clock = d.Int()
	s.energyJ = d.F64()
	s.batchWorkJ = d.F64()
	if err := d.Err(); err != nil {
		return err
	}
	if s.clock < 0 {
		return fmt.Errorf("sim: negative clock %d in checkpoint", s.clock)
	}
	if err := s.plat.DecodeState(d); err != nil {
		return err
	}
	for i, inst := range s.insts {
		if err := inst.DecodeState(d); err != nil {
			return fmt.Errorf("sim: service %d: %w", i, err)
		}
	}
	if err := s.powSrc.DecodeState(d); err != nil {
		return err
	}
	if err := s.synthSrc.DecodeState(d); err != nil {
		return err
	}

	haveInj := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if haveInj != (s.inj != nil) {
		return fmt.Errorf("sim: checkpoint fault injector presence (%v) does not match server configuration (%v)",
			haveInj, s.inj != nil)
	}
	if haveInj {
		if err := s.inj.DecodeState(d); err != nil {
			return err
		}
	}
	downed := d.Ints()
	if err := d.Err(); err != nil {
		return err
	}
	n := s.plat.NumCores()
	s.downed = make(map[int]bool, len(downed))
	for _, c := range downed {
		if c < 0 || c >= n {
			return fmt.Errorf("sim: downed core %d out of range [0,%d)", c, n)
		}
		s.downed[c] = true
	}
	s.haveApplied = d.Bool()
	asg, err := DecodeAssignment(d)
	if err != nil {
		return err
	}
	s.appliedAsg = asg
	s.crashPrev = d.Bools()
	s.warmupLeft = d.Ints()
	lastLat := make([]ServiceStats, k)
	for i := range lastLat {
		lastLat[i] = decodeServiceStats(d)
	}
	s.lastLat = lastLat
	s.haveLat = d.Bools()
	if err := d.Err(); err != nil {
		return err
	}
	if len(s.crashPrev) != k || len(s.warmupLeft) != k || len(s.haveLat) != k {
		return fmt.Errorf("sim: per-service state lengths (%d, %d, %d) do not match %d services",
			len(s.crashPrev), len(s.warmupLeft), len(s.haveLat), k)
	}
	return nil
}
