package sim

import (
	"math"
	"testing"

	"github.com/twig-sched/twig/internal/sim/platform"
	"github.com/twig-sched/twig/internal/sim/pmc"
	"github.com/twig-sched/twig/internal/sim/service"
)

func newTestServer(names ...string) *Server {
	cfg := DefaultConfig()
	specs := make([]ServiceSpec, len(names))
	for i, n := range names {
		specs[i] = ServiceSpec{Profile: service.MustLookup(n), QoSTargetMs: 5, Seed: int64(i + 1)}
	}
	return NewServer(cfg, specs)
}

func fullAlloc(s *Server) Assignment {
	return Assignment{
		PerService:  []Allocation{{Cores: s.ManagedCores(), FreqGHz: platform.MaxFreqGHz}},
		IdleFreqGHz: platform.MinFreqGHz,
	}
}

func TestServerBasics(t *testing.T) {
	s := newTestServer("masstree")
	if s.NumServices() != 1 {
		t.Fatal("NumServices")
	}
	if len(s.ManagedCores()) != 18 {
		t.Fatalf("managed cores = %d", len(s.ManagedCores()))
	}
	if s.Spec(0).Profile.Name != "masstree" {
		t.Fatal("Spec")
	}
	if s.MaxPowerW() <= s.IdlePowerW() {
		t.Fatal("power bounds")
	}
}

func TestStepAdvancesClockAndEnergy(t *testing.T) {
	s := newTestServer("masstree")
	asg := fullAlloc(s)
	r := s.MustStep(asg, []float64{1000})
	if r.Time != 0 || s.Clock() != 1 {
		t.Fatal("clock")
	}
	if r.TruePowerW <= 0 || r.EnergyJ != r.TruePowerW {
		t.Fatalf("power %v energy %v", r.TruePowerW, r.EnergyJ)
	}
	if math.Abs(s.EnergyJ()-r.EnergyJ) > 1e-9 {
		t.Fatal("cumulative energy")
	}
	if r.Services[0].NumCores != 18 || r.Services[0].FreqGHz != 2.0 {
		t.Fatalf("allocation echo %+v", r.Services[0])
	}
	if r.Services[0].QoSTargetMs != 5 || r.Services[0].OfferedRPS != 1000 {
		t.Fatal("spec echo")
	}
}

func TestStepArgumentValidation(t *testing.T) {
	s := newTestServer("masstree")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.MustStep(Assignment{}, []float64{100})
}

func TestLatencyRespondsToAllocation(t *testing.T) {
	// Same load: a starved allocation must show higher latency than a
	// generous one.
	sBig := newTestServer("masstree")
	sSmall := newTestServer("masstree")
	load := []float64{0.5 * service.MustLookup("masstree").MaxLoadRPS}
	big := fullAlloc(sBig)
	small := Assignment{
		PerService:  []Allocation{{Cores: sSmall.ManagedCores()[:6], FreqGHz: 1.2}},
		IdleFreqGHz: platform.MinFreqGHz,
	}
	var lBig, lSmall float64
	for i := 0; i < 30; i++ {
		rb := sBig.MustStep(big, load)
		rs := sSmall.MustStep(small, load)
		if i >= 10 {
			lBig += rb.Services[0].P99Ms
			lSmall += rs.Services[0].P99Ms
		}
	}
	if lSmall <= lBig {
		t.Fatalf("starved allocation latency %v must exceed generous %v", lSmall, lBig)
	}
}

func TestPowerRespondsToIdleFrequency(t *testing.T) {
	// Unowned cores at low DVFS must consume less than at high DVFS.
	run := func(idle float64) float64 {
		s := newTestServer("masstree")
		asg := Assignment{
			PerService:  []Allocation{{Cores: s.ManagedCores()[:4], FreqGHz: 2.0}},
			IdleFreqGHz: idle,
		}
		var p float64
		for i := 0; i < 10; i++ {
			p += s.MustStep(asg, []float64{200}).TruePowerW
		}
		return p
	}
	if lo, hi := run(1.2), run(2.0); lo >= hi {
		t.Fatalf("idle@1.2 power %v must be below idle@2.0 %v", lo, hi)
	}
}

func TestColocationInterferenceVisible(t *testing.T) {
	// Masstree alone vs masstree next to a bandwidth-hungry Moses at
	// high load: the same masstree allocation must show higher latency.
	mass := service.MustLookup("masstree")
	moses := service.MustLookup("moses")

	solo := newTestServer("masstree")
	var soloLat float64
	for i := 0; i < 40; i++ {
		asg := Assignment{
			PerService:  []Allocation{{Cores: solo.ManagedCores()[:4], FreqGHz: 2.0}},
			IdleFreqGHz: platform.MinFreqGHz,
		}
		r := solo.MustStep(asg, []float64{0.3 * mass.MaxLoadRPS})
		if i >= 10 {
			soloLat += r.Services[0].P99Ms
		}
	}

	pair := newTestServer("masstree", "moses")
	cores := pair.ManagedCores()
	var pairLat float64
	for i := 0; i < 40; i++ {
		asg := Assignment{
			PerService: []Allocation{
				{Cores: cores[:4], FreqGHz: 2.0},
				{Cores: cores[4:], FreqGHz: 2.0},
			},
			IdleFreqGHz: platform.MinFreqGHz,
		}
		r := pair.MustStep(asg, []float64{0.3 * mass.MaxLoadRPS, 0.9 * moses.MaxLoadRPS})
		if i >= 10 {
			pairLat += r.Services[0].P99Ms
			if r.Services[0].InflationApplied <= 1 {
				t.Fatal("colocated masstree should see interference inflation")
			}
		}
	}
	if pairLat <= soloLat {
		t.Fatalf("colocated latency %v must exceed solo %v", pairLat, soloLat)
	}
}

func TestTimeSharedCores(t *testing.T) {
	// Two services overlapping on all cores: each gets half the
	// capacity, so a load that is fine solo becomes overloaded shared.
	s := newTestServer("masstree", "masstree")
	cores := s.ManagedCores()
	asg := Assignment{
		PerService: []Allocation{
			{Cores: cores, FreqGHz: 2.0},
			{Cores: cores, FreqGHz: 2.0},
		},
	}
	mass := service.MustLookup("masstree")
	r := s.MustStep(asg, []float64{0.5 * mass.MaxLoadRPS, 0.5 * mass.MaxLoadRPS})
	// Each service sees 18 shared cores at 50% share ≈ 9 effective.
	if r.Services[0].CapacityGHz >= 0.7*mass.CapacityGHz(ones(18), twos(18)) {
		t.Fatalf("shared capacity %v should be roughly half of exclusive", r.Services[0].CapacityGHz)
	}
}

func TestPMCsPopulatedAndNormalised(t *testing.T) {
	s := newTestServer("xapian")
	asg := fullAlloc(s)
	var r StepResult
	for i := 0; i < 5; i++ {
		r = s.MustStep(asg, []float64{500})
	}
	sv := r.Services[0]
	if sv.PMCs[pmc.InstructionRetired] <= 0 || sv.PMCs[pmc.UnhaltedCoreCycles] <= 0 {
		t.Fatalf("PMCs not populated: %v", sv.PMCs)
	}
	for i, v := range sv.NormPMCs {
		if v < 0 || v > 1 {
			t.Fatalf("normalised counter %d = %v out of [0,1]", i, v)
		}
	}
	// Counters must scale with load.
	sHi := newTestServer("xapian")
	var rHi StepResult
	for i := 0; i < 5; i++ {
		rHi = sHi.MustStep(fullAlloc(sHi), []float64{900})
	}
	if rHi.Services[0].PMCs[pmc.InstructionRetired] <= sv.PMCs[pmc.InstructionRetired] {
		t.Fatal("instructions must grow with load")
	}
}

func TestCalibrateQoSTarget(t *testing.T) {
	cfg := DefaultConfig()
	p := service.MustLookup("masstree")
	q := CalibrateQoSTarget(p, cfg, 60, 1)
	if q <= 0 || q > 100 {
		t.Fatalf("calibrated QoS target = %v ms", q)
	}
	// Reproducible.
	q2 := CalibrateQoSTarget(p, cfg, 60, 1)
	if q != q2 {
		t.Fatalf("calibration not deterministic: %v vs %v", q, q2)
	}
}

func TestQoSTargetOrderingMatchesPaper(t *testing.T) {
	// Table II orders targets masstree < xapian < img-dnn < moses; the
	// simulated platform must reproduce that ordering.
	cfg := DefaultConfig()
	get := func(name string) float64 {
		return CalibrateQoSTarget(service.MustLookup(name), cfg, 90, 2)
	}
	mass, xap, img, mos := get("masstree"), get("xapian"), get("img-dnn"), get("moses")
	if !(mass < xap && xap < img && img < mos) {
		t.Fatalf("QoS ordering violated: masstree=%v xapian=%v img-dnn=%v moses=%v",
			mass, xap, img, mos)
	}
}

func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

func twos(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 2
	}
	return v
}

func TestLatencyTax(t *testing.T) {
	build := func(tax float64) *Server {
		cfg := DefaultConfig()
		cfg.LatencyTaxMs = tax
		return NewServer(cfg, []ServiceSpec{{Profile: service.MustLookup("xapian"), QoSTargetMs: 20, Seed: 1}})
	}
	plain, taxed := build(0), build(4.5)
	for step := 0; step < 5; step++ {
		a := plain.MustStep(fullAlloc(plain), []float64{500}).Services[0]
		b := taxed.MustStep(fullAlloc(taxed), []float64{500}).Services[0]
		for _, pair := range [][2]float64{
			{a.P99Ms, b.P99Ms}, {a.P95Ms, b.P95Ms}, {a.MeanMs, b.MeanMs}, {a.MaxMs, b.MaxMs},
		} {
			if got := pair[1] - pair[0]; math.Abs(got-4.5) > 1e-9 {
				t.Fatalf("step %d: tax shifted latency by %v, want 4.5", step, got)
			}
		}
		// Everything but the log lines is untouched by the tax.
		if a.PMCs != b.PMCs || a.OfferedRPS != b.OfferedRPS {
			t.Fatal("tax must only touch reported latencies")
		}
	}
}

func TestLatencyTaxValidation(t *testing.T) {
	for _, tax := range []float64{math.NaN(), math.Inf(1), -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("tax %v must panic", tax)
				}
			}()
			cfg := DefaultConfig()
			cfg.LatencyTaxMs = tax
			NewServer(cfg, nil)
		}()
	}
}

// TestHeterogeneousServer runs a 1-socket edge SKU with a capped DVFS
// range end to end: managed cores come from socket 0, the reward
// normalisers use the SKU's own ceiling, and steps run clean.
func TestHeterogeneousServer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Platform = platform.Config{Sockets: 1, CoresPerSocket: 10, MinFreqGHz: 1.2, MaxFreqGHz: 1.6}
	cfg.ManagedSocket = 0
	srv := NewServer(cfg, []ServiceSpec{{Profile: service.MustLookup("masstree"), QoSTargetMs: 8, Seed: 3}})
	if len(srv.ManagedCores()) != 10 {
		t.Fatalf("managed cores = %d", len(srv.ManagedCores()))
	}
	if lo, hi := srv.FreqRange(); lo != 1.2 || hi != 1.6 {
		t.Fatalf("freq range [%v,%v]", lo, hi)
	}
	big := NewServer(DefaultConfig(), []ServiceSpec{{Profile: service.MustLookup("masstree"), QoSTargetMs: 8, Seed: 3}})
	if srv.MaxPowerW() >= big.MaxPowerW() {
		t.Fatal("edge SKU must have a lower power ceiling than the paper node")
	}
	asg := Assignment{
		PerService:  []Allocation{{Cores: srv.ManagedCores(), FreqGHz: 2.0}}, // clamped to 1.6
		IdleFreqGHz: 1.2,
	}
	r := srv.MustStep(asg, []float64{800})
	if got := r.Services[0].FreqGHz; math.Abs(got-1.6) > 1e-9 {
		t.Fatalf("applied freq = %v, want the SKU cap 1.6", got)
	}
}
