package sim

import (
	"testing"

	"github.com/twig-sched/twig/internal/sim/batch"
	"github.com/twig-sched/twig/internal/sim/platform"
	"github.com/twig-sched/twig/internal/sim/service"
)

func batchServer(withBatch bool) *Server {
	cfg := DefaultConfig()
	if withBatch {
		spec := batch.DefaultSpec()
		cfg.Batch = &spec
	}
	return NewServer(cfg, []ServiceSpec{{
		Profile: service.MustLookup("img-dnn"), QoSTargetMs: 20, Seed: 1,
	}})
}

func TestBatchSoaksUnownedCores(t *testing.T) {
	srv := batchServer(true)
	cores := srv.ManagedCores()
	asg := Assignment{
		PerService:  []Allocation{{Cores: cores[:10], FreqGHz: 2.0}},
		IdleFreqGHz: platform.MinFreqGHz,
	}
	r := srv.MustStep(asg, []float64{300})
	if r.Batch.Cores != 8 {
		t.Fatalf("batch cores = %d, want the 8 unowned", r.Batch.Cores)
	}
	// 8 cores at the idle frequency (1.2 GHz) ≈ 9.6 GHz·s before
	// contention.
	if r.Batch.WorkDone <= 0 || r.Batch.WorkDone > 9.61 {
		t.Fatalf("batch work = %v", r.Batch.WorkDone)
	}
	if srv.BatchWork() != r.Batch.WorkDone {
		t.Fatal("cumulative batch work")
	}
}

func TestBatchStarvesUnderFullAllocation(t *testing.T) {
	srv := batchServer(true)
	asg := Assignment{
		PerService: []Allocation{{Cores: srv.ManagedCores(), FreqGHz: 2.0}},
	}
	r := srv.MustStep(asg, []float64{300})
	if r.Batch.Cores != 0 || r.Batch.WorkDone != 0 {
		t.Fatalf("batch should starve: %+v", r.Batch)
	}
}

func TestNoBatchConfigured(t *testing.T) {
	srv := batchServer(false)
	asg := Assignment{
		PerService:  []Allocation{{Cores: srv.ManagedCores()[:4], FreqGHz: 2.0}},
		IdleFreqGHz: platform.MinFreqGHz,
	}
	r := srv.MustStep(asg, []float64{300})
	if r.Batch.Cores != 0 || srv.BatchWork() != 0 {
		t.Fatal("no batch should run")
	}
}

func TestBatchAddsInterferencePressure(t *testing.T) {
	// The same LC allocation must see more inflation when a
	// bandwidth-hungry batch occupies the remaining cores.
	run := func(withBatch bool) float64 {
		cfg := DefaultConfig()
		if withBatch {
			spec := batch.Spec{Name: "stream", BWPerWork: 2.5, CacheMB: 20, Sensitivity: 1}
			cfg.Batch = &spec
		}
		srv := NewServer(cfg, []ServiceSpec{{
			Profile: service.MustLookup("img-dnn"), QoSTargetMs: 20, Seed: 1,
		}})
		cores := srv.ManagedCores()
		asg := Assignment{
			// Batch gets 12 hot cores so its bandwidth demand bites.
			PerService:  []Allocation{{Cores: cores[:6], FreqGHz: 2.0}},
			IdleFreqGHz: platform.MaxFreqGHz,
		}
		var infl float64
		for i := 0; i < 10; i++ {
			r := srv.MustStep(asg, []float64{0.3 * service.MustLookup("img-dnn").MaxLoadRPS})
			infl = r.Services[0].InflationApplied
		}
		return infl
	}
	clean := run(false)
	dirty := run(true)
	if dirty <= clean {
		t.Fatalf("batch must add interference: %v vs %v", dirty, clean)
	}
}

func TestBatchPowerAccounted(t *testing.T) {
	// Batch-busy cores must consume active power.
	run := func(withBatch bool) float64 {
		srv := batchServer(withBatch)
		cores := srv.ManagedCores()
		asg := Assignment{
			PerService:  []Allocation{{Cores: cores[:6], FreqGHz: 2.0}},
			IdleFreqGHz: platform.MinFreqGHz,
		}
		var p float64
		for i := 0; i < 5; i++ {
			p = srv.MustStep(asg, []float64{200}).TruePowerW
		}
		return p
	}
	if idle, busy := run(false), run(true); busy <= idle {
		t.Fatalf("batch power %v must exceed idle %v", busy, idle)
	}
}
