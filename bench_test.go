// Package twigbench contains the benchmark harness that regenerates
// every table and figure of the paper's evaluation (run with
// `go test -bench=. -benchmem`), plus micro-benchmarks behind Table III
// and ablation benches for the design choices called out in DESIGN.md §5.
//
// Each BenchmarkFigN/BenchmarkTableN runs the corresponding experiment
// at the scaled-down "quick" profile and reports the headline numbers as
// custom benchmark metrics, so `go test -bench=.` doubles as the
// reproduction harness. The cmd/twig-experiments binary prints the full
// tables (including at the paper's scale with -scale paper).
package twigbench

import (
	"runtime"
	"testing"

	"github.com/twig-sched/twig/internal/bdq"
	"github.com/twig-sched/twig/internal/experiments"
	"github.com/twig-sched/twig/internal/replay"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/pmc"
	"github.com/twig-sched/twig/internal/sim/service"
)

// The figure benches fan independent experiment cells out over all
// available cores; results are byte-identical to serial runs.
func init() { experiments.SetParallelism(runtime.GOMAXPROCS(0)) }

// benchScale is the scaled-down profile the benches regenerate the
// evaluation at — identical to the quick profile used by
// cmd/twig-experiments, so the headline metrics match EXPERIMENTS.md.
func benchScale() experiments.Scale {
	sc := experiments.QuickScale()
	sc.Name = "bench"
	return sc
}

// BenchmarkFig1PredictionError regenerates Fig. 1: multi-PMC vs IPC-only
// tail-latency prediction error for Memcached.
func BenchmarkFig1PredictionError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1("memcached", 2000, 1)
		b.ReportMetric(r.ZeroErrorGain, "zeroErrGain")
		b.ReportMetric(r.MultiPMC.ErrStdMs, "pmcStd(ms)")
		b.ReportMetric(r.IPCOnly.ErrStdMs, "ipcStd(ms)")
	}
}

// BenchmarkTable1PMCSelection regenerates Table I's correlation + PCA
// selection pipeline.
func BenchmarkTable1PMCSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1([]string{"masstree", "xapian"}, 15, 1)
		b.ReportMetric(float64(r.Components), "pcs@95%")
	}
}

// BenchmarkFig4PowerModelPAAE regenerates Fig. 4: the Eq. 2 power-model
// PAAE for Masstree.
func BenchmarkFig4PowerModelPAAE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4("masstree", 8, 1)
		b.ReportMetric(r.PAAE, "PAAE%")
		b.ReportMetric(r.Model.R2, "R2")
	}
}

// BenchmarkTable2Capacity regenerates Table II's capacity knees.
func BenchmarkTable2Capacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table2(30, 1)
		b.ReportMetric(r.Rows[0].QoSTargetMs, "masstreeQoS(ms)")
	}
}

// BenchmarkTable3OverheadGradientDescent measures the per-interval
// gradient-descent cost with the paper-size network (Table III row 1).
func BenchmarkTable3OverheadGradientDescent(b *testing.B) {
	r := experiments.Table3(b.N)
	b.ReportMetric(float64(r.GradientDescent.Microseconds()), "µs/step")
}

// BenchmarkTable3OverheadMonitorAndMapper measures PMC smoothing and the
// mapper call (Table III rows 2–3).
func BenchmarkTable3OverheadMonitorAndMapper(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table3(2)
		b.ReportMetric(float64(r.PMCGather.Nanoseconds()), "monitor-ns")
		b.ReportMetric(float64(r.Mapping.Nanoseconds()), "mapper-ns")
	}
}

// BenchmarkAgentObserve measures the steady-state cost of one control
// interval's learning work — store a transition, sample a minibatch,
// forward/backward the paper-size network and apply Adam — the loop that
// must fit inside Twig's one-second budget (Table III row 1).
func BenchmarkAgentObserve(b *testing.B) {
	sc := experiments.PaperScale()
	spec := bdq.Spec{
		StateDim:     2 * int(pmc.NumCounters),
		Agents:       2,
		Dims:         []int{18, 9},
		SharedHidden: sc.SharedHidden,
		BranchHidden: sc.BranchHidden,
		Dropout:      sc.Dropout,
	}
	agent := bdq.NewAgent(bdq.AgentConfig{
		Spec:      spec,
		BatchSize: sc.BatchSize,
		UsePER:    true,
		Seed:      1,
	})
	state := make([]float64, spec.StateDim)
	next := make([]float64, spec.StateDim)
	for i := range state {
		state[i] = 0.3
		next[i] = 0.31
	}
	t := replay.Transition{State: state, Actions: []int{3, 4, 5, 6}, Rewards: []float64{1, 1}, NextState: next}
	for i := 0; i < 2*sc.BatchSize; i++ {
		agent.Observe(t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Observe(t)
	}
}

// BenchmarkFig5TwigS regenerates Fig. 5 for one service across the three
// load levels (run cmd/twig-experiments for all four services).
func BenchmarkFig5TwigS(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5([]string{"masstree"}, sc, 1)
		b.ReportMetric(r.AvgQoS("twig-s"), "twigQoS")
		b.ReportMetric(r.AvgEnergyNorm("twig-s"), "twigEnergy/static")
		b.ReportMetric(r.AvgEnergyNorm("heracles"), "heraclesEnergy/static")
	}
}

// BenchmarkFig6Mappings regenerates Fig. 6's mapping + tardiness
// distributions.
func BenchmarkFig6Mappings(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6(sc, 1)
		for _, tr := range r.Traces {
			if tr.Manager == "twig-s" {
				b.ReportMetric(float64(tr.Migrations), "twigMigrations")
			}
			if tr.Manager == "hipster" {
				b.ReportMetric(float64(tr.Migrations), "hipsterMigrations")
			}
		}
	}
}

// BenchmarkFig7Learning regenerates the Fig. 7 learning curves.
func BenchmarkFig7Learning(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7(sc, 1)
		b.ReportMetric(float64(r.CrossedAt80["twig-s"]), "twig80@bucket")
	}
}

// BenchmarkFigMemComplexity regenerates the memory-complexity analysis.
func BenchmarkFigMemComplexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigMem(3, 30, 25)
		b.ReportMetric(float64(r.TwigBytes)/(1<<20), "twigMB")
	}
}

// BenchmarkFig8TransferS regenerates the Twig-S transfer-learning
// comparison.
func BenchmarkFig8TransferS(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8(sc, 1)
		t := r.Targets[0]
		b.ReportMetric(float64(t.ScratchTo80), "scratch80")
		b.ReportMetric(float64(t.TransferTo80), "transfer80")
	}
}

// BenchmarkFig9TransferC regenerates the Twig-C transfer-learning
// comparison.
func BenchmarkFig9TransferC(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9(sc, 1)
		b.ReportMetric(r.TransferPowerW, "transferW")
		b.ReportMetric(r.ScratchPowerW, "scratchW")
	}
}

// BenchmarkFig10VaryingS regenerates the Fig. 10 varying-load traces.
func BenchmarkFig10VaryingS(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig10(sc, 1)
		for _, tr := range r.Traces {
			if tr.Manager == "twig-s" {
				b.ReportMetric(tr.QoSGuarantee, "twigQoS")
			}
		}
	}
}

// BenchmarkFig11VaryingC regenerates the Fig. 11 Twig-C varying-load
// trace.
func BenchmarkFig11VaryingC(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig11(sc, 1)
		b.ReportMetric(r.QoSGuarantee[0], "mosesQoS")
	}
}

// BenchmarkFig12MappingC regenerates the Fig. 12 PARTIES vs Twig-C
// mapping distributions.
func BenchmarkFig12MappingC(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig12(sc, 1)
		for _, tr := range r.Traces {
			if tr.Manager == "twig-c" {
				b.ReportMetric(float64(tr.Migrations), "twigMigrations")
			} else {
				b.ReportMetric(float64(tr.Migrations), "partiesMigrations")
			}
		}
	}
}

// BenchmarkFig13TwigC regenerates Fig. 13 for one pair (run
// cmd/twig-experiments for all six pairs).
func BenchmarkFig13TwigC(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig13([][2]string{{"masstree", "moses"}}, sc, 1)
		b.ReportMetric(r.AvgQoS("twig-c"), "twigQoS")
		b.ReportMetric(r.AvgEnergyNorm("twig-c"), "twigEnergy/static")
	}
}

// BenchmarkExtensionCAT evaluates the optional third (Intel CAT) action
// branch on a cache-oversubscribed pair.
func BenchmarkExtensionCAT(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r := experiments.ExtensionCAT(sc, 1)
		b.ReportMetric(r.WithQoS[0], "mosesQoS+CAT")
		b.ReportMetric(r.WithoutQoS[0], "mosesQoS-CAT")
	}
}

// BenchmarkExtensionBatchColoc evaluates LC + best-effort batch
// colocation: batch throughput each manager's reclamation produces.
func BenchmarkExtensionBatchColoc(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r := experiments.BatchColoc(sc, 1)
		for _, c := range r.Cells {
			if c.Manager == "twig-s" {
				b.ReportMetric(c.BatchWork, "twigBatchWork")
			}
		}
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationUniformReplay compares prioritised vs uniform replay.
func BenchmarkAblationUniformReplay(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r := experiments.AblationReplay(sc, 1)
		b.ReportMetric(r.Cells[0].QoSGuarantee, "perQoS")
		b.ReportMetric(r.Cells[1].QoSGuarantee, "uniformQoS")
	}
}

// BenchmarkAblationEta sweeps the PMC smoothing window.
func BenchmarkAblationEta(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r := experiments.AblationEta(sc, 1)
		b.ReportMetric(r.Cells[1].QoSGuarantee, "eta5QoS")
	}
}

// BenchmarkAblationReward sweeps the power-reward weight θ.
func BenchmarkAblationReward(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r := experiments.AblationReward(sc, 1)
		b.ReportMetric(r.Cells[0].AvgPowerW, "theta0W")
		b.ReportMetric(r.Cells[1].AvgPowerW, "theta0.5W")
	}
}

// BenchmarkAblationSingleV ablates the multi-agent state-value streams
// (per-agent V vs one shared V) on a colocated pair.
func BenchmarkAblationSingleV(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r := experiments.AblationMultiAgentValue(sc, 1)
		b.ReportMetric(r.Cells[0].QoSGuarantee, "perAgentVQoS")
		b.ReportMetric(r.Cells[1].QoSGuarantee, "sharedVQoS")
	}
}

// BenchmarkAblationTargetMode compares mean vs per-branch TD targets.
func BenchmarkAblationTargetMode(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r := experiments.AblationTargetMode(sc, 1)
		b.ReportMetric(r.Cells[0].QoSGuarantee, "meanQoS")
		b.ReportMetric(r.Cells[1].QoSGuarantee, "perBranchQoS")
	}
}

// BenchmarkSimulatorStep isolates the simulator's per-interval cost for
// a colocated pair under a static assignment.
func BenchmarkSimulatorStep(b *testing.B) {
	srv := experiments.NewServer(1, "masstree", "moses")
	cores := srv.ManagedCores()
	asg := sim.Assignment{
		PerService: []sim.Allocation{
			{Cores: cores[:9], FreqGHz: 2.0},
			{Cores: cores[9:], FreqGHz: 2.0},
		},
		IdleFreqGHz: 1.2,
	}
	loads := []float64{0.3 * service.MustLookup("masstree").MaxLoadRPS, 0.3 * service.MustLookup("moses").MaxLoadRPS}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.MustStep(asg, loads)
	}
}
