// Quickstart: manage a single latency-critical service (Masstree) with
// Twig on the simulated server, using the public twig API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/twig-sched/twig/twig"
)

func main() {
	// 1. Pick a service profile and calibrate its QoS target the way
	//    the paper does (p99 at max load, full socket, max DVFS).
	prof, err := twig.LookupProfile("masstree")
	if err != nil {
		log.Fatal(err)
	}
	cfg := twig.DefaultServerConfig()
	target := twig.CalibrateQoSTarget(prof, cfg, 60, 1)
	fmt.Printf("masstree: max load %.0f rps, QoS target %.2f ms\n", prof.MaxLoadRPS, target)

	// 2. Build the simulated server and a Twig-S manager (QuickConfig
	//    anneals exploration over ~3800 steps; PaperConfig uses the
	//    paper's full 25 000-step schedule).
	srv := twig.NewServer(cfg, []twig.ServiceSpec{{Profile: prof, QoSTargetMs: target, Seed: 1}})
	svcCfg := twig.ServiceConfig{
		Name:        prof.Name,
		QoSTargetMs: target,
		MaxLoadRPS:  prof.MaxLoadRPS,
	}
	mgr := twig.NewManager(
		twig.QuickConfig([]twig.ServiceConfig{svcCfg}, len(srv.ManagedCores()), srv.MaxPowerW()),
		srv.ManagedCores())

	// 3. Run the 1 s control loop at 40% load: observe → decide → act.
	const seconds = 4300
	load := twig.FixedLoad(0.4 * prof.MaxLoadRPS)
	obs := twig.InitialObservation(srv)
	met, total := 0, 0
	var energy float64
	for t := 0; t < seconds; t++ {
		asg := mgr.Decide(obs)
		res := srv.MustStep(asg, []float64{load.RPS(t)})
		obs = twig.ObservationFrom(srv, res)

		sv := res.Services[0]
		if t >= seconds-300 { // summarise after the learning phase
			total++
			energy += res.EnergyJ
			if sv.P99Ms <= sv.QoSTargetMs {
				met++
			}
		}
		if (t+1)%600 == 0 {
			fmt.Printf("t=%4ds  %2d cores @ %.1f GHz  p99=%7.2f ms  power=%5.1f W  ε=%.2f\n",
				t+1, sv.NumCores, sv.FreqGHz, sv.P99Ms, res.TruePowerW, mgr.Agent().Epsilon())
		}
	}
	fmt.Printf("\nQoS guarantee over the last 300 s: %.1f%%  (avg power %.1f W)\n",
		100*float64(met)/float64(total), energy/float64(total))
}
