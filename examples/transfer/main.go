// Transfer: train Twig on one service, then move the learned network to
// a brand-new service — the Sec. IV transfer-learning workflow. The
// final layers are re-initialised and exploration restarts mid-schedule,
// so the manager adapts far faster than learning from scratch (Fig. 8).
//
//	go run ./examples/transfer
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/twig-sched/twig/twig"
)

func main() {
	cfg := twig.DefaultServerConfig()
	donorName, targetName := "masstree", "xapian"

	// Phase 1: train on the donor service.
	donorProf, _ := twig.LookupProfile(donorName)
	donorTarget := twig.CalibrateQoSTarget(donorProf, cfg, 60, 1)
	donorSrv := twig.NewServer(cfg, []twig.ServiceSpec{{Profile: donorProf, QoSTargetMs: donorTarget, Seed: 1}})
	donor := newQuickManager(donorSrv, donorName, donorTarget, donorProf.MaxLoadRPS)
	run(donorSrv, donor, 0.5*donorProf.MaxLoadRPS, 4000, nil)

	// Checkpoint the full manager state — networks with their Adam
	// moments, the replay buffer, step counters and RNG position — not
	// just the weights a legacy Save would capture.
	var ckpt bytes.Buffer
	if err := donor.SaveCheckpoint(&ckpt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %s; checkpointed %d bytes of manager state\n\n", donorName, ckpt.Len())

	// Phase 2: the target service, from scratch vs with transfer.
	targetProf, _ := twig.LookupProfile(targetName)
	targetQoS := twig.CalibrateQoSTarget(targetProf, cfg, 60, 2)
	load := 0.5 * targetProf.MaxLoadRPS

	for _, mode := range []string{"scratch", "transfer"} {
		srv := twig.NewServer(cfg, []twig.ServiceSpec{{Profile: targetProf, QoSTargetMs: targetQoS, Seed: 3}})
		var mgr *twig.Manager
		if mode == "transfer" {
			// A checkpoint restores only into a manager with matching
			// configuration, so rebuild the donor's manager, restore, then
			// swap the new service in — the Sec. IV node-operator workflow.
			mgr = newQuickManager(srv, donorName, donorTarget, donorProf.MaxLoadRPS)
			if err := mgr.LoadCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
				log.Fatal(err)
			}
			mgr.SetService(0, twig.ServiceConfig{Name: targetName, QoSTargetMs: targetQoS, MaxLoadRPS: targetProf.MaxLoadRPS})
			// Re-initialise the output heads and resume ε mid-schedule.
			// Unlike bare-weight seeding, the restored replay buffer still
			// holds donor experience and the optimiser its moments, so the
			// first ~minibatch of updates trains on stale transitions —
			// expect QoS during the warm-up window to differ slightly from
			// a weights-only transfer before the advantage shows.
			mgr.Transfer(2000)
		} else {
			mgr = newQuickManager(srv, targetName, targetQoS, targetProf.MaxLoadRPS)
		}
		fmt.Printf("%s on %s:\n", mode, targetName)
		run(srv, mgr, load, 2400, func(t, met, total int) {
			fmt.Printf("  t=%4ds QoS so far %.0f%%\n", t, 100*float64(met)/float64(total))
		})
		fmt.Println()
	}
}

func newQuickManager(srv *twig.Server, name string, qosMs, maxRPS float64) *twig.Manager {
	svc := twig.ServiceConfig{Name: name, QoSTargetMs: qosMs, MaxLoadRPS: maxRPS}
	return twig.NewManager(
		twig.QuickConfig([]twig.ServiceConfig{svc}, len(srv.ManagedCores()), srv.MaxPowerW()),
		srv.ManagedCores())
}

func run(srv *twig.Server, mgr *twig.Manager, loadRPS float64, seconds int, progress func(t, met, total int)) {
	obs := twig.InitialObservation(srv)
	met, total := 0, 0
	for t := 0; t < seconds; t++ {
		asg := mgr.Decide(obs)
		res := srv.MustStep(asg, []float64{loadRPS})
		obs = twig.ObservationFrom(srv, res)
		total++
		if res.Services[0].P99Ms <= res.Services[0].QoSTargetMs {
			met++
		}
		if progress != nil && (t+1)%600 == 0 {
			progress(t+1, met, total)
			met, total = 0, 0
		}
	}
}
