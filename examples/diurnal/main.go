// Diurnal: drive Img-dnn with the day/night load pattern common in data
// centres (Sec. V-B) and watch Twig track it, shrinking the allocation
// at night and growing it for the daytime peak.
//
//	go run ./examples/diurnal
package main

import (
	"fmt"

	"github.com/twig-sched/twig/twig"
)

func main() {
	prof, _ := twig.LookupProfile("img-dnn")
	cfg := twig.DefaultServerConfig()
	target := twig.CalibrateQoSTarget(prof, cfg, 60, 1)
	srv := twig.NewServer(cfg, []twig.ServiceSpec{{Profile: prof, QoSTargetMs: target, Seed: 1}})
	svc := twig.ServiceConfig{Name: prof.Name, QoSTargetMs: target, MaxLoadRPS: prof.MaxLoadRPS}
	mgr := twig.NewManager(
		twig.QuickConfig([]twig.ServiceConfig{svc}, len(srv.ManagedCores()), srv.MaxPowerW()),
		srv.ManagedCores())

	// A compressed "day": one period of the sinusoid spans 1800 s, so
	// the run sees several days while learning.
	day := twig.DiurnalLoad{
		MinRPS:  0.2 * prof.MaxLoadRPS,
		MaxRPS:  0.8 * prof.MaxLoadRPS,
		PeriodS: 1800,
	}

	const seconds = 7200
	obs := twig.InitialObservation(srv)
	met, total := 0, 0
	var energy float64
	for t := 0; t < seconds; t++ {
		asg := mgr.Decide(obs)
		res := srv.MustStep(asg, []float64{day.RPS(t)})
		obs = twig.ObservationFrom(srv, res)
		sv := res.Services[0]
		if t >= seconds/2 {
			total++
			energy += res.EnergyJ
			if sv.P99Ms <= sv.QoSTargetMs {
				met++
			}
		}
		if t >= seconds-1800 && (t+1)%200 == 0 {
			fmt.Printf("t=%4ds load=%4.0f rps → %2d cores @ %.1f GHz, p99 %6.2f/%.2f ms, %5.1f W\n",
				t+1, day.RPS(t), sv.NumCores, sv.FreqGHz, sv.P99Ms, sv.QoSTargetMs, res.TruePowerW)
		}
	}
	fmt.Printf("\nsecond half of the run: QoS guarantee %.1f%%, avg power %.1f W\n",
		100*float64(met)/float64(total), energy/float64(total))
}
