// Colocation: run Masstree and Moses side by side under Twig-C and under
// PARTIES, and compare QoS guarantee and energy — a miniature of the
// paper's Fig. 12/13 story.
//
//	go run ./examples/colocation
package main

import (
	"fmt"

	"github.com/twig-sched/twig/twig"
)

const seconds = 4300

func main() {
	mass, _ := twig.LookupProfile("masstree")
	moses, _ := twig.LookupProfile("moses")
	cfg := twig.DefaultServerConfig()
	massTarget := twig.CalibrateQoSTarget(mass, cfg, 60, 1)
	mosesTarget := twig.CalibrateQoSTarget(moses, cfg, 60, 1)
	// Colocated services run at a fraction of their solo maxima.
	loads := []float64{0.25 * mass.MaxLoadRPS, 0.25 * moses.MaxLoadRPS}

	specs := []twig.ServiceSpec{
		{Profile: mass, QoSTargetMs: massTarget, Seed: 1},
		{Profile: moses, QoSTargetMs: mosesTarget, Seed: 2},
	}

	// Twig-C.
	srv := twig.NewServer(cfg, specs)
	twigC := twig.NewManager(twig.QuickConfig([]twig.ServiceConfig{
		{Name: "masstree", QoSTargetMs: massTarget, MaxLoadRPS: mass.MaxLoadRPS},
		{Name: "moses", QoSTargetMs: mosesTarget, MaxLoadRPS: moses.MaxLoadRPS},
	}, len(srv.ManagedCores()), srv.MaxPowerW()), srv.ManagedCores())
	tQoS, tPower := drive(srv, twigC, loads)

	// PARTIES.
	srv2 := twig.NewServer(cfg, specs)
	parties := twig.NewParties(twig.DefaultPartiesConfig(), srv2.ManagedCores(), 2)
	pQoS, pPower := drive(srv2, parties, loads)

	fmt.Println("manager   masstree-QoS  moses-QoS  avg power")
	fmt.Printf("twig-c    %10.1f%% %9.1f%% %9.1f W\n", tQoS[0]*100, tQoS[1]*100, tPower)
	fmt.Printf("parties   %10.1f%% %9.1f%% %9.1f W\n", pQoS[0]*100, pQoS[1]*100, pPower)
}

// drive runs the standard control loop and summarises the final 300 s.
func drive(srv *twig.Server, c twig.Controller, loads []float64) (qos [2]float64, power float64) {
	obs := twig.InitialObservation(srv)
	n := 0
	for t := 0; t < seconds; t++ {
		asg := c.Decide(obs)
		res := srv.MustStep(asg, loads)
		obs = twig.ObservationFrom(srv, res)
		if t < seconds-300 {
			continue
		}
		n++
		power += res.TruePowerW
		for k := 0; k < 2; k++ {
			if res.Services[k].P99Ms <= res.Services[k].QoSTargetMs {
				qos[k]++
			}
		}
	}
	qos[0] /= float64(n)
	qos[1] /= float64(n)
	return qos, power / float64(n)
}
