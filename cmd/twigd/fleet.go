package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"time"

	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/cluster"
	"github.com/twig-sched/twig/internal/experiments"
	"github.com/twig-sched/twig/internal/sim"
)

// runFleet is twigd's -nodes mode: a fleet of simulated nodes, each
// running its own Twig control loop, under the cluster coordinator that
// owns placement, heartbeat leases, failover and QoS-class degradation.
// The -services set is admitted as latency-critical replicas (earlier
// names at higher priority). With -checkpoint-dir the whole fleet —
// every node's world and manager plus the coordinator's placement state
// — checkpoints crash-consistently and resumes bit-identically.
func runFleet(cfg runConfig) error {
	ccfg := cluster.Config{
		Nodes:           cfg.nodes,
		NodeCapacity:    cfg.nodeCap,
		Seed:            cfg.seed,
		Scenario:        cfg.nodeFaults,
		MaxRetries:      4,
		Factory:         experiments.FleetFactory(cfg.scale),
		CheckpointEvery: cfg.ckptEvery,
		FastMath:        cfg.fast,
	}

	// A scenario preset replaces the homogeneous fleet: one node per
	// world with the class's platform, and each class mix admitted as
	// replicas at the mix load (placement stays the coordinator's; the
	// generated traces apply only in single-node mode).
	var admits []cluster.ReplicaSpec
	if cfg.scenario != "" {
		worlds, err := scenarioWorlds(cfg)
		if err != nil {
			return err
		}
		if cfg.nodes != len(worlds) {
			fmt.Printf("twigd: scenario %q fixes the fleet at %d nodes (-nodes %d ignored)\n",
				cfg.scenario, len(worlds), cfg.nodes)
			cfg.nodes = len(worlds)
			ccfg.Nodes = len(worlds)
		}
		ccfg.NodeSims = make([]sim.Config, len(worlds))
		for i, w := range worlds {
			ccfg.NodeSims[i] = w.SimConfig(cfg.seed)
			for _, m := range w.Class.Mix {
				admits = append(admits, cluster.ReplicaSpec{
					Service:     m.Service,
					LoadFrac:    m.LoadFrac,
					QoSTargetMs: experiments.QoSTarget(m.Service),
					Class:       cluster.LC,
					Priority:    len(admits),
				})
			}
		}
	} else {
		for i, name := range cfg.names {
			admits = append(admits, cluster.ReplicaSpec{
				Service:     name,
				LoadFrac:    cfg.loads[i],
				QoSTargetMs: experiments.QoSTarget(name),
				Class:       cluster.LC,
				Priority:    len(cfg.names) - 1 - i,
			})
		}
	}
	var store *checkpoint.Store
	if cfg.ckptDir != "" {
		var err error
		store, err = checkpoint.NewStore(cfg.ckptDir, cfg.ckptKeep)
		if err != nil {
			return fmt.Errorf("opening checkpoint dir: %w", err)
		}
		store.SetRejectHook(func(path string, err error) {
			fmt.Fprintf(os.Stderr, "twigd: skipping corrupt checkpoint %s: %v\n", path, err)
		})
		ccfg.Store = store
	}

	var coord *cluster.Coordinator
	if store != nil {
		c, seq, err := cluster.RestoreFleet(ccfg)
		switch {
		case err == nil:
			coord = c
			fmt.Printf("twigd: fleet resumed from %s at t=%d\n", store.Path(seq), c.Clock())
		case errors.Is(err, os.ErrNotExist):
			// No checkpoints yet: a fresh fleet.
		default:
			return fmt.Errorf("no fleet checkpoint in %s is restorable: %v", cfg.ckptDir, err)
		}
	}
	if coord == nil {
		c, err := cluster.New(ccfg)
		if err != nil {
			return err
		}
		for _, spec := range admits {
			if _, err := c.Admit(spec); err != nil {
				return err
			}
		}
		coord = c
	}

	if cfg.httpAddr != "" {
		server := fleetServer(cfg.httpAddr, coord)
		go func() {
			if err := server.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "twigd: http server: %v\n", err)
			}
		}()
		fmt.Printf("twigd: serving fleet /status and /metrics on %s\n", cfg.httpAddr)
	}

	fmt.Printf("twigd: fleet of %d nodes (capacity %d), %d replicas, node scenario %q\n",
		cfg.nodes, cfg.nodeCap, len(admits), cfg.nodeFaults.Name)
	for coord.Clock() < cfg.seconds {
		coord.Step()
		if coord.Clock()%cfg.logEvery == 0 {
			fmt.Print(coord.Summary().StatusText())
		}
	}

	if store != nil {
		if err := coord.CheckpointNow(); err != nil {
			fmt.Fprintf(os.Stderr, "twigd: writing final fleet checkpoint: %v\n", err)
		} else {
			fmt.Printf("  checkpointed t=%d to %s\n", coord.Clock(), cfg.ckptDir)
		}
	}
	fmt.Println("\nfleet summary:")
	fmt.Print(coord.Summary().StatusText())
	return nil
}

// fleetServer exposes the fleet's observability endpoints (read-only:
// fleet membership is fixed by the -services flag for determinism).
func fleetServer(addr string, coord *cluster.Coordinator) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(coord.Summary())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(coord.Metrics().Render()))
	})
	return &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadTimeout:       5 * time.Second,
		ReadHeaderTimeout: 2 * time.Second,
		WriteTimeout:      5 * time.Second,
		IdleTimeout:       30 * time.Second,
		MaxHeaderBytes:    1 << 16,
	}
}
