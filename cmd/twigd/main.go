// Command twigd runs the Twig task manager against the simulated server
// as a long-running control-plane daemon. Beyond watching the log, the
// -http endpoint exposes the full admission API: services can be
// admitted, drained and deleted at runtime, /metrics exports
// Prometheus-style telemetry, /status serves a JSON snapshot, and
// /reload hot-swaps the manager weights from the newest checkpoint
// without dropping the control loop.
//
// Usage:
//
//	twigd -services masstree,moses -loads 0.3,0.3 -seconds 2000
//	twigd -services img-dnn -pattern diurnal -seconds 4000
//	twigd -services masstree -trace load.csv -csv run.csv -http :8080
//	twigd -services masstree,moses -faults hostile -guard
//	twigd -services masstree -faults crash -checkpoint-dir /var/lib/twigd
//	twigd -nodes 3 -services masstree,xapian -node-faults chaos -seconds 600
//	twigd -scenario cloud-edge -seconds 3600
//
// With -scenario <preset> (cloud-edge, agentic-burst or diurnal) the
// daemon manages the preset's first world: its node class fixes the
// simulated platform (SKU, DVFS range, inter-tier latency tax) and the
// class's service mix is admitted under the scenario's deterministic
// generated traces, replacing -services/-loads/-pattern. Combined with
// -nodes > 1 the whole preset becomes the fleet: one node per world,
// heterogeneous per-node platforms, the mixes admitted as replicas
// (placement stays the coordinator's; fleet load is the mix fraction,
// not the generated traces). A resumed run must be started with the
// same -scenario, like -trace.
//
// With -nodes N (N > 1) twigd runs a fleet: N simulated nodes, each
// under its own Twig control loop, coordinated by the cluster control
// plane — heartbeat leases, whole-node crash/partition detection
// (-node-faults), warm failover from snapshots, and QoS-class
// degradation when capacity drops. /status and /metrics then report the
// fleet; the admission API is disabled (membership is fixed for
// determinism).
//
// With -fast, GEMM dispatch swaps in fused FMA/AVX-512 microkernels
// when the CPU has them (the selected kernel is reported at startup and
// in /status and /metrics). Fast math changes results by trailing ulps,
// so a -fast run's checkpoints no longer resume bit-identically; the
// default mode and the checkpoint format are untouched.
//
// With -checkpoint-dir, the daemon writes a crash-consistent checkpoint
// of the full control plane (simulated world, manager, guard, drainer,
// service registry, control-loop position) every -checkpoint-every
// simulated seconds, keeps the last -checkpoint-keep files, and on
// start restores the newest valid one — skipping torn or corrupt files
// — so a killed daemon resumes bit-identically where it left off.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"

	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/core"
	"github.com/twig-sched/twig/internal/daemon"
	"github.com/twig-sched/twig/internal/mat"
	"github.com/twig-sched/twig/internal/report"
	"github.com/twig-sched/twig/internal/scenario"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/loadgen"
)

func main() {
	cfg, err := parseConfig(os.Args[1:], os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		os.Exit(0)
	}
	if err != nil {
		fail("%v", err)
	}
	if cfg.fast {
		// Applied again by the engine/coordinator config; announcing it
		// here covers both modes with the actual dispatch outcome.
		fmt.Printf("twigd: fast math requested: %s kernels (cpu: %s) — resume is no longer bit-identical\n",
			mat.SetFastMath(true), mat.CPUFeatures())
	}
	if cfg.nodes > 1 {
		err = runFleet(cfg)
	} else {
		err = run(cfg)
	}
	if err != nil {
		fail("%v", err)
	}
}

func run(cfg runConfig) error {
	dcfg := daemon.Config{
		Scale:           cfg.scale,
		Seed:            cfg.seed,
		Guard:           cfg.guard,
		CheckpointEvery: cfg.ckptEvery,
		FastMath:        cfg.fast,
	}
	if !cfg.faults.IsZero() {
		dcfg.Faults = &cfg.faults
	}
	if cfg.scenario != "" {
		w, err := scenarioWorlds(cfg)
		if err != nil {
			return err
		}
		first := w[0]
		sc := first.SimConfig(cfg.seed)
		dcfg.Sim = &sc
		dcfg.PatternOverrides = make(map[string]loadgen.Pattern, len(first.Services))
		cfg.names = first.Services
		cfg.loads = make([]float64, len(first.Services))
		for i, name := range first.Services {
			dcfg.PatternOverrides[name] = first.Traces[i]
			cfg.loads[i] = loadFracOf(first, name)
		}
		fmt.Printf("twigd: scenario %q world %s: %v on the %q node class\n",
			cfg.scenario, first.Name, first.Services, first.Class.Name)
	}
	if cfg.trace != "" {
		f, err := os.Open(cfg.trace)
		if err != nil {
			return fmt.Errorf("opening trace: %w", err)
		}
		tr, err := loadgen.ReadTrace(f, true)
		f.Close()
		if err != nil {
			return fmt.Errorf("parsing trace: %w", err)
		}
		dcfg.PatternOverrides = map[string]loadgen.Pattern{cfg.names[0]: tr}
	}

	var store *checkpoint.Store
	if cfg.ckptDir != "" {
		var err error
		store, err = checkpoint.NewStore(cfg.ckptDir, cfg.ckptKeep)
		if err != nil {
			return fmt.Errorf("opening checkpoint dir: %w", err)
		}
		dcfg.Store = store
	}

	initial := make([]daemon.AdmitRequest, len(cfg.names))
	for i, name := range cfg.names {
		initial[i] = daemon.AdmitRequest{Name: name, Load: cfg.loads[i], Pattern: cfg.pattern}
	}

	// With a checkpoint dir, prefer resuming the newest valid checkpoint
	// over starting fresh; an empty dir is a fresh run, but a dir whose
	// checkpoints all fail to restore is surfaced rather than silently
	// discarding training the operator expects to keep.
	var eng *daemon.Engine
	resumed := false
	if store != nil {
		e, seq, err := daemon.RestoreLatest(dcfg)
		switch {
		case err == nil:
			eng = e
			resumed = true
			fmt.Printf("twigd: resumed from %s at t=%d\n", store.Path(seq), e.Next())
		case errors.Is(err, os.ErrNotExist):
			// No checkpoints yet: a fresh run.
		default:
			return fmt.Errorf("no checkpoint in %s is restorable: %v", cfg.ckptDir, err)
		}
	}
	if eng == nil {
		e, err := daemon.New(dcfg, initial)
		if err != nil {
			return err
		}
		eng = e
	}
	if !cfg.faults.IsZero() {
		fmt.Printf("twigd: fault scenario %q armed\n", cfg.faults.Name)
	}

	if cfg.load != "" {
		if resumed {
			fmt.Printf("twigd: -load ignored, run resumed from %s\n", cfg.ckptDir)
		} else if err := loadInto(eng.Manager(), cfg.load); err != nil {
			return err
		}
	}

	if cfg.httpAddr != "" {
		server := daemon.NewServer(cfg.httpAddr, eng)
		go func() {
			if err := server.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "twigd: http server: %v\n", err)
			}
		}()
		fmt.Printf("twigd: serving admission API, /status and /metrics on %s\n", cfg.httpAddr)
	}

	// Per-interval CSV columns follow the services present at each
	// interval's step; the header is built from the initial membership
	// (runtime admissions append columns without renaming existing ones).
	csvTable := report.NewTable(csvHeader(cfg.names)...)

	sumFrom := maxInt(cfg.seconds-cfg.scale.SummaryS, cfg.seconds/2)
	var acc summaryAcc
	var coresTrace []float64
	fmt.Printf("twigd: managing %v on %d cores (%s scale, ε %0.2f→%0.2f)\n",
		cfg.names, eng.NumCores(), cfg.scale.Name, cfg.scale.Epsilon.Start, cfg.scale.Epsilon.End)

	err := eng.RunTo(cfg.seconds, func(t int, r sim.StepResult) {
		if len(r.Services) > 0 {
			coresTrace = append(coresTrace, float64(r.Services[0].NumCores))
		}
		if cfg.csv != "" {
			csvTable.AddRow(csvRow(t, r)...)
		}
		if t >= sumFrom {
			acc.add(r)
		}
		if (t+1)%cfg.logEvery != 0 {
			return
		}
		fmt.Printf("t=%5ds power=%5.1fW", t+1, r.TruePowerW)
		for _, sv := range r.Services {
			fmt.Printf("  %2dc@%.1fGHz p99=%6.2fms (target %.2f)",
				sv.NumCores, sv.FreqGHz, sv.P99Ms, sv.QoSTargetMs)
		}
		fmt.Println()
	})
	if err != nil {
		return err
	}

	if store != nil {
		// Final checkpoint regardless of cadence, and wait for the disk.
		if err := eng.CheckpointNow(); err != nil {
			fmt.Fprintf(os.Stderr, "twigd: writing final checkpoint: %v\n", err)
		} else {
			fmt.Printf("  checkpointed t=%d to %s\n", eng.Next(), cfg.ckptDir)
		}
	}

	acc.print()
	if n := len(coresTrace); n > 120 {
		step := n / 60
		var ds []float64
		for i := 0; i < n; i += step {
			ds = append(ds, coresTrace[i])
		}
		fmt.Printf("  %s cores over time: %s\n", cfg.names[0], report.Sparkline(ds))
	}

	if cfg.save != "" {
		f, err := os.Create(cfg.save)
		if err != nil {
			return fmt.Errorf("creating checkpoint file: %w", err)
		}
		if err := eng.Manager().SaveCheckpoint(f); err != nil {
			return fmt.Errorf("saving checkpoint: %w", err)
		}
		f.Close()
		fmt.Printf("  saved manager checkpoint to %s\n", cfg.save)
	}

	if cfg.csv != "" {
		f, err := os.Create(cfg.csv)
		if err != nil {
			return fmt.Errorf("creating csv: %w", err)
		}
		if err := csvTable.WriteCSV(f); err != nil {
			return fmt.Errorf("writing csv: %w", err)
		}
		f.Close()
		fmt.Printf("  wrote %d intervals to %s\n", csvTable.Len(), cfg.csv)
	}
	return nil
}

// summaryAcc accumulates the final-window summary the daemon prints at
// exit: QoS guarantee, tardiness, allocation and energy per service
// index (runtime membership changes truncate to the smallest set seen).
type summaryAcc struct {
	samples int
	energyJ float64
	powerW  float64
	met     []float64
	tard    []float64
	cores   []float64
	freq    []float64
}

func (a *summaryAcc) add(r sim.StepResult) {
	a.samples++
	a.energyJ += r.EnergyJ
	a.powerW += r.TruePowerW
	for len(a.met) < len(r.Services) {
		a.met = append(a.met, 0)
		a.tard = append(a.tard, 0)
		a.cores = append(a.cores, 0)
		a.freq = append(a.freq, 0)
	}
	for i, sv := range r.Services {
		if sv.P99Ms <= sv.QoSTargetMs {
			a.met[i]++
		}
		if sv.QoSTargetMs > 0 && sv.P99Ms == sv.P99Ms { // skip NaN
			a.tard[i] += sv.P99Ms / sv.QoSTargetMs
		}
		a.cores[i] += float64(sv.NumCores)
		a.freq[i] += sv.FreqGHz
	}
}

func (a *summaryAcc) print() {
	if a.samples == 0 {
		return
	}
	n := float64(a.samples)
	fmt.Println("\nsummary (final window):")
	for i := range a.met {
		fmt.Printf("  service %d: QoS guarantee %s  mean tardiness %.2f  avg alloc %.1f cores @ %.2f GHz\n",
			i, report.Percent(a.met[i]/n), a.tard[i]/n, a.cores[i]/n, a.freq[i]/n)
	}
	fmt.Printf("  energy %.0f J (avg %.1f W)\n", a.energyJ, a.powerW/n)
}

func csvHeader(names []string) []string {
	h := []string{"t", "power_w"}
	for _, n := range names {
		h = append(h, n+"_cores", n+"_freq_ghz", n+"_p99_ms", n+"_rps")
	}
	return h
}

func csvRow(t int, r sim.StepResult) []interface{} {
	row := []interface{}{t, r.TruePowerW}
	for _, sv := range r.Services {
		row = append(row, sv.NumCores, sv.FreqGHz, sv.P99Ms, sv.OfferedRPS)
	}
	return row
}

// loadInto seeds the manager from -load. The file may be a checkpoint
// written by -save or -checkpoint-dir (the manager section is pulled
// out; training resumes bit-identically) or a legacy gob weight file
// (weights only — optimiser moments, replay and ε position start fresh).
func loadInto(mgr *core.Manager, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading %s: %w", path, err)
	}
	if checkpoint.IsCheckpoint(data) {
		if err := mgr.LoadCheckpoint(bytes.NewReader(data)); err != nil {
			return fmt.Errorf("restoring checkpoint %s: %w", path, err)
		}
		fmt.Printf("twigd: restored manager checkpoint from %s\n", path)
		return nil
	}
	fmt.Fprintf(os.Stderr, "twigd: %s is a legacy gob weight file; loading weights only (deprecated — re-save with -save to migrate)\n", path)
	if err := mgr.Load(bytes.NewReader(data)); err != nil {
		return fmt.Errorf("loading legacy weights %s: %w", path, err)
	}
	return nil
}

// scenarioWorlds expands the validated -scenario preset at the run's
// seed. Used by both the single-node engine (first world) and the fleet
// (one node per world).
func scenarioWorlds(cfg runConfig) ([]scenario.World, error) {
	spec, err := scenario.Named(cfg.scenario)
	if err != nil {
		return nil, err
	}
	worlds, err := spec.Worlds(cfg.seed)
	if err != nil {
		return nil, fmt.Errorf("expanding scenario %q: %w", cfg.scenario, err)
	}
	return worlds, nil
}

// loadFracOf returns the mix load fraction for one of a world's
// services.
func loadFracOf(w scenario.World, name string) float64 {
	for _, m := range w.Class.Mix {
		if m.Service == name {
			return m.LoadFrac
		}
	}
	return 0
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "twigd: "+format+"\n", args...)
	os.Exit(2)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
