// Command twigd runs the Twig task manager against the simulated server
// and reports per-interval decisions and QoS, like watching the real
// daemon's log. It is the interactive entry point; see twig-experiments
// for the paper's evaluation.
//
// Usage:
//
//	twigd -services masstree,moses -loads 0.3,0.3 -seconds 2000
//	twigd -services img-dnn -pattern diurnal -seconds 4000
//	twigd -services masstree -trace load.csv -csv run.csv -http :8080
//	twigd -services masstree,moses -faults hostile -guard
//	twigd -services masstree -faults crash -checkpoint-dir /var/lib/twigd
//
// With -http, GET /status returns a JSON snapshot of the run (time,
// power, per-service allocation and tail latency, and — under -faults
// and -guard — the active fault events and guard health) while it
// executes. -faults arms a named deterministic fault scenario and
// -guard wraps the manager in the resilient harness.
//
// With -checkpoint-dir, the daemon writes a crash-consistent checkpoint
// of the full run state (simulated world, manager, guard, control-loop
// position) every -checkpoint-every simulated seconds, keeps the last
// -checkpoint-keep files, and on start restores the newest valid one —
// skipping torn or corrupt files — so a killed daemon resumes
// bit-identically where it left off.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/twig-sched/twig/internal/checkpoint"
	"github.com/twig-sched/twig/internal/core"
	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/experiments"
	"github.com/twig-sched/twig/internal/report"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/faults"
	"github.com/twig-sched/twig/internal/sim/loadgen"
	"github.com/twig-sched/twig/internal/sim/service"
)

// status is the JSON snapshot served at /status. Non-finite measurements
// (a crashed service's latency, a failed RAPL read) are reported as -1
// so the snapshot always encodes as valid JSON.
type status struct {
	Time     int             `json:"time"`
	PowerW   float64         `json:"power_w"`
	Services []serviceStatus `json:"services"`
	// Faults lists the fault events active this interval (with -faults).
	Faults []string `json:"faults,omitempty"`
	// Guard carries the wrapper's intervention counters (with -guard).
	Guard *ctrl.GuardHealth `json:"guard,omitempty"`
}

type serviceStatus struct {
	Name        string  `json:"name"`
	Cores       int     `json:"cores"`
	FreqGHz     float64 `json:"freq_ghz"`
	P99Ms       float64 `json:"p99_ms"`
	QoSTargetMs float64 `json:"qos_target_ms"`
	OfferedRPS  float64 `json:"offered_rps"`
}

func main() {
	var (
		servicesFlag = flag.String("services", "masstree", "comma-separated service names")
		loadsFlag    = flag.String("loads", "0.5", "comma-separated load fractions of each service's max")
		pattern      = flag.String("pattern", "fixed", "load pattern: fixed, stepwise or diurnal")
		traceFlag    = flag.String("trace", "", "CSV load trace for the first service (overrides -pattern)")
		csvFlag      = flag.String("csv", "", "write a per-interval CSV record of the run to this file")
		httpFlag     = flag.String("http", "", "serve a JSON /status endpoint on this address while running")
		saveFlag     = flag.String("save", "", "write learned network weights to this file at exit")
		loadFlag     = flag.String("load", "", "seed the manager with weights saved by -save")
		seconds      = flag.Int("seconds", 3500, "simulated seconds to run")
		seed         = flag.Int64("seed", 1, "random seed")
		scale        = flag.String("scale", "quick", "learning profile: quick or paper")
		logEvery     = flag.Int("log-every", 100, "print a status line every N simulated seconds")
		faultsFlag   = flag.String("faults", "none", "fault scenario: "+strings.Join(faults.Names(), ", "))
		guardFlag    = flag.Bool("guard", false, "wrap the manager in the resilient guard")
		ckptDir      = flag.String("checkpoint-dir", "", "directory for periodic crash-consistent checkpoints; on start the latest valid one is restored and the run resumes bit-identically")
		ckptEvery    = flag.Int("checkpoint-every", 60, "write a checkpoint every N simulated seconds (with -checkpoint-dir)")
		ckptKeep     = flag.Int("checkpoint-keep", 3, "checkpoints to retain on disk (with -checkpoint-dir)")
	)
	flag.Parse()

	names := strings.Split(*servicesFlag, ",")
	loadStrs := strings.Split(*loadsFlag, ",")
	if len(loadStrs) == 1 && len(names) > 1 {
		for len(loadStrs) < len(names) {
			loadStrs = append(loadStrs, loadStrs[0])
		}
	}
	if len(loadStrs) != len(names) {
		fail("need one load fraction per service")
	}

	sc := experiments.QuickScale()
	if *scale == "paper" {
		sc = experiments.PaperScale()
	}

	scenario, err := faults.Named(*faultsFlag)
	if err != nil {
		fail("%v", err)
	}
	// build constructs a fresh world (server, manager, optional guard).
	// Restore tries candidate checkpoints newest-first, and each attempt
	// decodes into brand-new components so a half-restored bundle from a
	// corrupt file is discarded whole, never adopted.
	build := func() (*sim.Server, *core.Manager, *ctrl.Guard) {
		var s *sim.Server
		if scenario.IsZero() {
			s = experiments.NewServer(*seed, names...)
		} else {
			s = experiments.NewFaultyServer(*seed, &scenario, names...)
		}
		m := experiments.NewTwig(s, sc, *seed, names...)
		var g *ctrl.Guard
		if *guardFlag {
			g = ctrl.NewGuard(m, ctrl.DefaultGuardConfig(s.ManagedCores()))
		}
		return s, m, g
	}
	components := func(s *sim.Server, m *core.Manager, g *ctrl.Guard, l *experiments.LoopState) []checkpoint.Checkpointable {
		comps := []checkpoint.Checkpointable{s, m, l}
		if g != nil {
			comps = append(comps, g)
		}
		return comps
	}

	srv, mgr, guard := build()
	loop := experiments.NewLoopState()
	if !scenario.IsZero() {
		fmt.Printf("twigd: fault scenario %q armed\n", scenario.Name)
	}

	var writer *checkpoint.AsyncWriter
	resumed := false
	if *ckptDir != "" {
		store, err := checkpoint.NewStore(*ckptDir, *ckptKeep)
		if err != nil {
			fail("opening checkpoint dir: %v", err)
		}
		seq, err := store.LoadLatest(func(data []byte) error {
			s, m, g := build()
			l := experiments.NewLoopState()
			if err := checkpoint.Unmarshal(data, components(s, m, g, l)...); err != nil {
				return err
			}
			srv, mgr, guard, loop = s, m, g, l
			return nil
		})
		switch {
		case err == nil:
			resumed = true
			fmt.Printf("twigd: resumed from %s at t=%d\n", store.Path(seq), loop.Next)
		case errors.Is(err, os.ErrNotExist):
			// No checkpoints yet: a fresh run.
		default:
			// Every retained checkpoint failed to restore. Starting over
			// silently would discard training the operator expects to
			// keep, so surface it and let them decide.
			fail("no checkpoint in %s is restorable: %v", *ckptDir, err)
		}
		writer = checkpoint.NewAsyncWriter(store)
	}
	var controller ctrl.Controller = mgr
	if guard != nil {
		controller = guard
	}

	if *loadFlag != "" {
		if resumed {
			fmt.Printf("twigd: -load ignored, run resumed from %s\n", *ckptDir)
		} else if err := loadInto(mgr, *loadFlag); err != nil {
			fail("%v", err)
		}
	}

	patterns := make([]loadgen.Pattern, len(names))
	for i, name := range names {
		frac, err := strconv.ParseFloat(strings.TrimSpace(loadStrs[i]), 64)
		if err != nil {
			fail("bad load fraction %q: %v", loadStrs[i], err)
		}
		maxRPS := service.MustLookup(name).MaxLoadRPS
		switch *pattern {
		case "fixed":
			patterns[i] = loadgen.Fixed(frac * maxRPS)
		case "stepwise":
			patterns[i] = loadgen.NewStepWise(0.2*frac*maxRPS, frac*maxRPS, 0.2, 200)
		case "diurnal":
			patterns[i] = loadgen.Diurnal{MinRPS: 0.3 * frac * maxRPS, MaxRPS: frac * maxRPS, PeriodS: 3600}
		default:
			fail("unknown pattern %q", *pattern)
		}
	}
	if *traceFlag != "" {
		f, err := os.Open(*traceFlag)
		if err != nil {
			fail("opening trace: %v", err)
		}
		tr, err := loadgen.ReadTrace(f, true)
		f.Close()
		if err != nil {
			fail("parsing trace: %v", err)
		}
		patterns[0] = tr
	}

	// Optional live status endpoint on a dedicated mux and server with
	// timeouts, so a slow or hostile client cannot pin the daemon.
	var mu sync.Mutex
	var snap status
	if *httpFlag != "" {
		server := newStatusServer(*httpFlag, &mu, &snap)
		go func() {
			if err := server.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "twigd: http server: %v\n", err)
			}
		}()
		fmt.Printf("twigd: serving /status on %s\n", *httpFlag)
	}

	// Optional per-interval CSV.
	csvTable := report.NewTable(csvHeader(names)...)

	var coresTrace []float64
	fmt.Printf("twigd: managing %v on %d cores (%s scale, ε %0.2f→%0.2f)\n",
		names, len(srv.ManagedCores()), sc.Name, sc.Epsilon.Start, sc.Epsilon.End)
	runCfg := experiments.RunConfig{
		Server:       srv,
		Controller:   controller,
		Patterns:     patterns,
		Seconds:      *seconds,
		SummaryFromS: maxInt(*seconds-sc.SummaryS, *seconds/2),
		AfterInterval: func(t int, obs ctrl.Observation, lastValid sim.Assignment) {
			// Track the loop state every interval; encode on cadence. The
			// encode is synchronous (the state must be a consistent cut),
			// the disk write is not — a slow disk drops intermediate
			// snapshots rather than stalling the control loop.
			loop.Next, loop.Obs, loop.LastValid = t+1, obs, lastValid
			if writer != nil && (t+1)%maxInt(*ckptEvery, 1) == 0 {
				writer.Submit(uint64(t+1), checkpoint.Marshal(components(srv, mgr, guard, loop)...))
			}
		},
		Hook: func(t int, r sim.StepResult, asg sim.Assignment) {
			mu.Lock()
			snap = snapshot(names, t, r, guard)
			mu.Unlock()
			coresTrace = append(coresTrace, float64(r.Services[0].NumCores))
			if *csvFlag != "" {
				csvTable.AddRow(csvRow(t, r)...)
			}
			if (t+1)%*logEvery != 0 {
				return
			}
			fmt.Printf("t=%5ds power=%5.1fW", t+1, r.TruePowerW)
			for i, sv := range r.Services {
				fmt.Printf("  %s: %2dc@%.1fGHz p99=%6.2fms (target %.2f)",
					names[i], sv.NumCores, sv.FreqGHz, sv.P99Ms, sv.QoSTargetMs)
			}
			fmt.Println()
		},
	}
	loop.Configure(&runCfg)
	sum := experiments.Run(runCfg)

	if writer != nil {
		// Final checkpoint regardless of cadence, and wait for the disk.
		writer.Submit(uint64(loop.Next), checkpoint.Marshal(components(srv, mgr, guard, loop)...))
		if err := writer.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "twigd: writing final checkpoint: %v\n", err)
		} else {
			fmt.Printf("  checkpointed t=%d to %s\n", loop.Next, *ckptDir)
		}
	}

	fmt.Println("\nsummary (final window):")
	for i, name := range names {
		fmt.Printf("  %-10s QoS guarantee %s  mean tardiness %.2f  avg alloc %.1f cores @ %.2f GHz\n",
			name, report.Percent(sum.QoSGuarantee[i]), sum.MeanTardiness[i], sum.AvgCores[i], sum.AvgFreqGHz[i])
	}
	fmt.Printf("  energy %.0f J (avg %.1f W), %d migrations\n", sum.EnergyJ, sum.AvgPowerW, sum.Migrations)
	if n := len(coresTrace); n > 120 {
		step := n / 60
		var ds []float64
		for i := 0; i < n; i += step {
			ds = append(ds, coresTrace[i])
		}
		fmt.Printf("  %s cores over time: %s\n", names[0], report.Sparkline(ds))
	}

	if *saveFlag != "" {
		f, err := os.Create(*saveFlag)
		if err != nil {
			fail("creating checkpoint file: %v", err)
		}
		if err := mgr.SaveCheckpoint(f); err != nil {
			fail("saving checkpoint: %v", err)
		}
		f.Close()
		fmt.Printf("  saved manager checkpoint to %s\n", *saveFlag)
	}

	if *csvFlag != "" {
		f, err := os.Create(*csvFlag)
		if err != nil {
			fail("creating csv: %v", err)
		}
		if err := csvTable.WriteCSV(f); err != nil {
			fail("writing csv: %v", err)
		}
		f.Close()
		fmt.Printf("  wrote %d intervals to %s\n", csvTable.Len(), *csvFlag)
	}
}

// newStatusServer builds the hardened HTTP server for /status.
func newStatusServer(addr string, mu *sync.Mutex, snap *status) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", statusHandler(mu, snap))
	return &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadTimeout:       5 * time.Second,
		ReadHeaderTimeout: 2 * time.Second,
		WriteTimeout:      5 * time.Second,
		IdleTimeout:       30 * time.Second,
	}
}

// statusHandler serves the mutex-guarded snapshot as JSON.
func statusHandler(mu *sync.Mutex, snap *status) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		s := *snap
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s)
	}
}

func snapshot(names []string, t int, r sim.StepResult, guard *ctrl.Guard) status {
	s := status{Time: t, PowerW: jsonSafe(r.TruePowerW)}
	for i, sv := range r.Services {
		s.Services = append(s.Services, serviceStatus{
			Name:        names[i],
			Cores:       sv.NumCores,
			FreqGHz:     sv.FreqGHz,
			P99Ms:       jsonSafe(sv.P99Ms),
			QoSTargetMs: sv.QoSTargetMs,
			OfferedRPS:  sv.OfferedRPS,
		})
	}
	for _, e := range r.Faults {
		s.Faults = append(s.Faults, e.String())
	}
	if guard != nil {
		h := guard.Health()
		s.Guard = &h
	}
	return s
}

// jsonSafe maps non-finite measurements to -1: encoding/json rejects
// NaN and Inf, and a dropped sensor must not take /status down with it.
func jsonSafe(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return -1
	}
	return v
}

func csvHeader(names []string) []string {
	h := []string{"t", "power_w"}
	for _, n := range names {
		h = append(h, n+"_cores", n+"_freq_ghz", n+"_p99_ms", n+"_rps")
	}
	return h
}

func csvRow(t int, r sim.StepResult) []interface{} {
	row := []interface{}{t, r.TruePowerW}
	for _, sv := range r.Services {
		row = append(row, sv.NumCores, sv.FreqGHz, sv.P99Ms, sv.OfferedRPS)
	}
	return row
}

// loadInto seeds the manager from -load. The file may be a checkpoint
// written by -save or -checkpoint-dir (the manager section is pulled
// out; training resumes bit-identically) or a legacy gob weight file
// (weights only — optimiser moments, replay and ε position start fresh).
func loadInto(mgr *core.Manager, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading %s: %w", path, err)
	}
	if checkpoint.IsCheckpoint(data) {
		if err := mgr.LoadCheckpoint(bytes.NewReader(data)); err != nil {
			return fmt.Errorf("restoring checkpoint %s: %w", path, err)
		}
		fmt.Printf("twigd: restored manager checkpoint from %s\n", path)
		return nil
	}
	fmt.Fprintf(os.Stderr, "twigd: %s is a legacy gob weight file; loading weights only (deprecated — re-save with -save to migrate)\n", path)
	if err := mgr.Load(bytes.NewReader(data)); err != nil {
		return fmt.Errorf("loading legacy weights %s: %w", path, err)
	}
	return nil
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "twigd: "+format+"\n", args...)
	os.Exit(2)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
