package main

import (
	"errors"
	"flag"
	"io"
	"strings"
	"testing"
)

func TestParseConfigTable(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr error // nil means the parse must succeed
		check   func(t *testing.T, cfg runConfig)
	}{
		{
			name: "defaults",
			args: nil,
			check: func(t *testing.T, cfg runConfig) {
				if len(cfg.names) != 1 || cfg.names[0] != "masstree" {
					t.Errorf("names = %v", cfg.names)
				}
				if len(cfg.loads) != 1 || cfg.loads[0] != 0.5 {
					t.Errorf("loads = %v", cfg.loads)
				}
				if cfg.scale.Name != "quick" {
					t.Errorf("scale = %s", cfg.scale.Name)
				}
				if !cfg.faults.IsZero() {
					t.Errorf("faults armed by default: %+v", cfg.faults)
				}
			},
		},
		{
			name: "multi service with broadcast load",
			args: []string{"-services", "masstree,xapian,moses", "-loads", "0.3"},
			check: func(t *testing.T, cfg runConfig) {
				if len(cfg.loads) != 3 || cfg.loads[2] != 0.3 {
					t.Errorf("broadcast loads = %v", cfg.loads)
				}
			},
		},
		{
			name: "explicit loads and paper scale",
			args: []string{"-services", "masstree,xapian", "-loads", "0.3,0.6", "-scale", "paper"},
			check: func(t *testing.T, cfg runConfig) {
				if cfg.loads[1] != 0.6 {
					t.Errorf("loads = %v", cfg.loads)
				}
				if cfg.scale.Name != "paper" {
					t.Errorf("scale = %s", cfg.scale.Name)
				}
			},
		},
		{
			name: "named fault scenario",
			args: []string{"-faults", "crash"},
			check: func(t *testing.T, cfg runConfig) {
				if cfg.faults.IsZero() || cfg.faults.Name != "crash" {
					t.Errorf("faults = %+v", cfg.faults)
				}
			},
		},
		{
			name:    "loads mismatch",
			args:    []string{"-services", "masstree,xapian", "-loads", "0.3,0.4,0.5"},
			wantErr: errLoadMismatch,
		},
		{
			name:    "unparsable load",
			args:    []string{"-loads", "lots"},
			wantErr: errBadLoad,
		},
		{
			name:    "non-positive load",
			args:    []string{"-loads", "-0.5"},
			wantErr: errBadLoad,
		},
		{
			name:    "unknown pattern",
			args:    []string{"-pattern", "sawtooth"},
			wantErr: errUnknownPattern,
		},
		{
			name:    "unknown service",
			args:    []string{"-services", "masstree,postgres"},
			wantErr: errUnknownService,
		},
		{
			name:    "unknown scale",
			args:    []string{"-scale", "huge"},
			wantErr: errUnknownScale,
		},
		{
			name: "scenario preset",
			args: []string{"-scenario", "agentic-burst"},
			check: func(t *testing.T, cfg runConfig) {
				if cfg.scenario != "agentic-burst" {
					t.Errorf("scenario = %q", cfg.scenario)
				}
			},
		},
		{
			name: "scenario with fleet flags",
			args: []string{"-scenario", "diurnal", "-nodes", "3", "-node-faults", "chaos"},
			check: func(t *testing.T, cfg runConfig) {
				if cfg.scenario != "diurnal" || cfg.nodes != 3 {
					t.Errorf("scenario = %q nodes = %d", cfg.scenario, cfg.nodes)
				}
			},
		},
		{
			name:    "scenario conflicts with trace",
			args:    []string{"-scenario", "cloud-edge", "-trace", "load.csv"},
			wantErr: errScenarioFlags,
		},
		{
			name:    "help passes through",
			args:    []string{"-h"},
			wantErr: flag.ErrHelp,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := parseConfig(tc.args, io.Discard)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			tc.check(t, cfg)
		})
	}
}

func TestParseConfigUnknownFault(t *testing.T) {
	_, err := parseConfig([]string{"-faults", "gremlins"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "gremlins") {
		t.Fatalf("err = %v, want unknown-scenario error naming the input", err)
	}
}

// An unknown preset must fail the parse with an error that names the
// input and lists the available presets, so the operator can self-serve.
func TestParseConfigUnknownScenario(t *testing.T) {
	_, err := parseConfig([]string{"-scenario", "mars-base"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "mars-base") || !strings.Contains(err.Error(), "cloud-edge") {
		t.Fatalf("err = %v, want unknown-preset error naming the input and the presets", err)
	}
}
