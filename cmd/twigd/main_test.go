package main

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/twig-sched/twig/internal/ctrl"
	"github.com/twig-sched/twig/internal/sim"
	"github.com/twig-sched/twig/internal/sim/faults"
	"github.com/twig-sched/twig/internal/sim/service"
)

func sampleResult(p99 float64) sim.StepResult {
	return sim.StepResult{
		Time:       3,
		TruePowerW: 55,
		Services: []sim.ServiceStats{
			{
				IntervalStats: service.IntervalStats{P99Ms: p99},
				NumCores:      4, FreqGHz: 1.8, QoSTargetMs: 5, OfferedRPS: 400,
			},
		},
		Faults: []faults.Event{{Kind: faults.RAPLFail, Service: -1, Start: 3, Duration: 1}},
	}
}

func TestSnapshotEncodesNaNSafely(t *testing.T) {
	s := snapshot([]string{"masstree"}, 3, sampleResult(math.NaN()), nil)
	if s.Services[0].P99Ms != -1 {
		t.Fatalf("NaN p99 mapped to %v, want -1", s.Services[0].P99Ms)
	}
	if len(s.Faults) != 1 {
		t.Fatalf("faults = %v", s.Faults)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
}

func TestSnapshotIncludesGuardHealth(t *testing.T) {
	inner := ctrl.NewGuard(staticLike{}, ctrl.DefaultGuardConfig([]int{18, 19}))
	inner.Decide(ctrl.Observation{Services: []ctrl.ServiceObs{{P99Ms: math.NaN(), QoSTargetMs: 5}}})
	s := snapshot([]string{"masstree"}, 0, sampleResult(2), inner)
	if s.Guard == nil || s.Guard.ObsRepaired == 0 {
		t.Fatalf("guard health missing from snapshot: %+v", s.Guard)
	}
}

type staticLike struct{}

func (staticLike) Name() string { return "s" }
func (staticLike) Decide(o ctrl.Observation) sim.Assignment {
	return sim.Assignment{PerService: []sim.Allocation{{Cores: []int{18}, FreqGHz: 2}}}
}

// The handler must be safe against concurrent snapshot updates — this is
// the path `go test -race` exercises.
func TestStatusHandlerConcurrent(t *testing.T) {
	var mu sync.Mutex
	snap := snapshot([]string{"masstree"}, 0, sampleResult(2), nil)
	h := statusHandler(&mu, &snap)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			snap = snapshot([]string{"masstree"}, i, sampleResult(float64(i)), nil)
			mu.Unlock()
		}
	}()

	for i := 0; i < 200; i++ {
		rec := httptest.NewRecorder()
		h(rec, httptest.NewRequest("GET", "/status", nil))
		if rec.Code != 200 {
			t.Fatalf("status %d", rec.Code)
		}
		var got status
		if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestStatusServerConfigured(t *testing.T) {
	var mu sync.Mutex
	var snap status
	srv := newStatusServer(":0", &mu, &snap)
	if srv.ReadTimeout <= 0 || srv.WriteTimeout <= 0 || srv.ReadHeaderTimeout <= 0 {
		t.Fatalf("missing timeouts: %+v", srv)
	}
	if srv.Handler == nil {
		t.Fatal("no dedicated mux")
	}
}
