package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/twig-sched/twig/internal/experiments"
	"github.com/twig-sched/twig/internal/scenario"
	"github.com/twig-sched/twig/internal/sim/faults"
	"github.com/twig-sched/twig/internal/sim/service"
)

// Named validation errors, so tests (and callers) can assert the
// failure mode instead of matching message text.
var (
	errLoadMismatch   = errors.New("twigd: need one load fraction per service")
	errBadLoad        = errors.New("twigd: bad load fraction")
	errUnknownPattern = errors.New("twigd: unknown load pattern (want fixed, stepwise or diurnal)")
	errUnknownService = errors.New("twigd: unknown service")
	errUnknownScale   = errors.New("twigd: unknown scale (want quick or paper)")
	errBadNodes       = errors.New("twigd: -nodes must be at least 1")
	errScenarioFlags  = errors.New("twigd: -scenario is mutually exclusive with -trace (a scenario brings its own generated traces)")
)

// runConfig is the parsed, validated command line.
type runConfig struct {
	names    []string
	loads    []float64
	pattern  string
	trace    string
	scenario string
	csv      string
	httpAddr string
	save     string
	load     string
	seconds  int
	seed     int64
	scale    experiments.Scale
	logEvery int
	faults   faults.Scenario
	guard    bool
	fast     bool

	ckptDir   string
	ckptEvery int
	ckptKeep  int

	// Fleet mode (-nodes > 1): the multi-node cluster coordinator
	// replaces the single-node daemon engine.
	nodes      int
	nodeCap    int
	nodeFaults faults.ClusterScenario
}

// parseConfig parses and validates twigd's flags from args (without the
// program name). Errors are named where a test or caller might branch
// on them; flag.ErrHelp passes through for -h. Usage output goes to
// errOut.
func parseConfig(args []string, errOut io.Writer) (runConfig, error) {
	fs := flag.NewFlagSet("twigd", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		servicesFlag = fs.String("services", "masstree", "comma-separated service names")
		loadsFlag    = fs.String("loads", "0.5", "comma-separated load fractions of each service's max")
		pattern      = fs.String("pattern", "fixed", "load pattern: fixed, stepwise or diurnal")
		traceFlag    = fs.String("trace", "", "CSV load trace for the first service (overrides -pattern)")
		scenFlag     = fs.String("scenario", "", "named scenario preset ("+strings.Join(scenario.Names(), ", ")+"): platform, service mix and generated traces replace -services/-loads/-pattern")
		csvFlag      = fs.String("csv", "", "write a per-interval CSV record of the run to this file")
		httpFlag     = fs.String("http", "", "serve the admission API, /status and /metrics on this address while running")
		saveFlag     = fs.String("save", "", "write learned network weights to this file at exit")
		loadFlag     = fs.String("load", "", "seed the manager with weights saved by -save")
		seconds      = fs.Int("seconds", 3500, "simulated seconds to run")
		seed         = fs.Int64("seed", 1, "random seed")
		scale        = fs.String("scale", "quick", "learning profile: quick or paper")
		logEvery     = fs.Int("log-every", 100, "print a status line every N simulated seconds")
		faultsFlag   = fs.String("faults", "none", "fault scenario: "+strings.Join(faults.Names(), ", "))
		guardFlag    = fs.Bool("guard", false, "wrap the manager in the resilient guard")
		fastFlag     = fs.Bool("fast", false, "use fused FMA/AVX-512 GEMM kernels when the CPU has them; faster, but resume is no longer bit-identical")
		ckptDir      = fs.String("checkpoint-dir", "", "directory for periodic crash-consistent checkpoints; on start the latest valid one is restored and the run resumes bit-identically")
		ckptEvery    = fs.Int("checkpoint-every", 60, "write a checkpoint every N simulated seconds (with -checkpoint-dir)")
		ckptKeep     = fs.Int("checkpoint-keep", 3, "checkpoints to retain on disk (with -checkpoint-dir)")
		nodesFlag    = fs.Int("nodes", 1, "fleet size: >1 runs the multi-node cluster coordinator instead of the single-node daemon")
		nodeCap      = fs.Int("node-capacity", 4, "replicas one fleet node hosts at once (with -nodes)")
		nodeFaults   = fs.String("node-faults", "none", "whole-node fault scenario in fleet mode: "+strings.Join(faults.ClusterNames(), ", "))
	)
	if err := fs.Parse(args); err != nil {
		return runConfig{}, err
	}

	cfg := runConfig{
		pattern:   *pattern,
		trace:     *traceFlag,
		scenario:  *scenFlag,
		csv:       *csvFlag,
		httpAddr:  *httpFlag,
		save:      *saveFlag,
		load:      *loadFlag,
		seconds:   *seconds,
		seed:      *seed,
		logEvery:  *logEvery,
		guard:     *guardFlag,
		fast:      *fastFlag,
		ckptDir:   *ckptDir,
		ckptEvery: *ckptEvery,
		ckptKeep:  *ckptKeep,
		nodes:     *nodesFlag,
		nodeCap:   *nodeCap,
	}
	if cfg.nodes < 1 {
		return runConfig{}, fmt.Errorf("%w: %d", errBadNodes, cfg.nodes)
	}
	if cfg.scenario != "" {
		if cfg.trace != "" {
			return runConfig{}, errScenarioFlags
		}
		// scenario.Named's error lists the presets for the operator.
		if _, err := scenario.Named(cfg.scenario); err != nil {
			return runConfig{}, err
		}
	}

	for _, name := range strings.Split(*servicesFlag, ",") {
		name = strings.TrimSpace(name)
		if _, err := service.Lookup(name); err != nil {
			return runConfig{}, fmt.Errorf("%w: %q", errUnknownService, name)
		}
		cfg.names = append(cfg.names, name)
	}

	loadStrs := strings.Split(*loadsFlag, ",")
	// A single fraction broadcasts across every service.
	if len(loadStrs) == 1 && len(cfg.names) > 1 {
		for len(loadStrs) < len(cfg.names) {
			loadStrs = append(loadStrs, loadStrs[0])
		}
	}
	if len(loadStrs) != len(cfg.names) {
		return runConfig{}, fmt.Errorf("%w: %d services, %d loads", errLoadMismatch, len(cfg.names), len(loadStrs))
	}
	for _, ls := range loadStrs {
		frac, err := strconv.ParseFloat(strings.TrimSpace(ls), 64)
		if err != nil || frac <= 0 {
			return runConfig{}, fmt.Errorf("%w: %q", errBadLoad, ls)
		}
		cfg.loads = append(cfg.loads, frac)
	}

	switch *pattern {
	case "fixed", "stepwise", "diurnal":
	default:
		return runConfig{}, fmt.Errorf("%w: %q", errUnknownPattern, *pattern)
	}

	switch *scale {
	case "quick":
		cfg.scale = experiments.QuickScale()
	case "paper":
		cfg.scale = experiments.PaperScale()
	default:
		return runConfig{}, fmt.Errorf("%w: %q", errUnknownScale, *scale)
	}

	scenario, err := faults.Named(*faultsFlag)
	if err != nil {
		return runConfig{}, err
	}
	cfg.faults = scenario

	nodeScenario, err := faults.NamedCluster(*nodeFaults)
	if err != nil {
		return runConfig{}, err
	}
	cfg.nodeFaults = nodeScenario
	return cfg, nil
}
