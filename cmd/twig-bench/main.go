// Command twig-bench is the benchmark trajectory harness: it drives the
// numeric hot path (warm Agent.Observe, the Table III gradient-descent
// step, a GEMM sweep over the paper-size layer shapes and a quick-scale
// Fig. 5 control cell) through testing.Benchmark and emits the results
// as machine-readable JSON (BENCH_PR5.json at the repo root is the
// committed baseline).
//
// Usage:
//
//	twig-bench                          # full run, JSON to stdout
//	twig-bench -short                   # CI smoke mode (seconds, noisier)
//	twig-bench -out BENCH_PR5.json      # write the JSON to a file
//	twig-bench -baseline BENCH_PR5.json # compare; exit 1 on >2× regression
//
// The -baseline comparison is deliberately loose (-max-regress, default
// 2×) so shared-runner noise does not fail CI, while real regressions —
// a disabled kernel, an accidental allocation on a zero-alloc path — do.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/twig-sched/twig/internal/bdq"
	"github.com/twig-sched/twig/internal/experiments"
	"github.com/twig-sched/twig/internal/mat"
	"github.com/twig-sched/twig/internal/replay"
	"github.com/twig-sched/twig/internal/sim/loadgen"
	"github.com/twig-sched/twig/internal/sim/pmc"
	"github.com/twig-sched/twig/internal/sim/service"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string             `json:"name"`
	N           int                `json:"n"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	// Dispatch annotates GEMM results with the path the shape takes
	// (streaming/tiled), the kernel flavour and the parallel gate.
	Dispatch string             `json:"dispatch,omitempty"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// Report is the JSON document twig-bench emits.
type Report struct {
	Schema    int    `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Kernel records the GEMM microkernel flavour dispatch selected at
	// startup ("portable", "avx2", "avx2-fma" or "avx512f-fma"),
	// CPUFeatures the instruction-set extensions the build detected
	// (e.g. "avx2+fma+avx512f", "none") and FastMath whether the fused
	// kernels were active for the whole run (-fast) — so a baseline
	// comparison can tell a real regression from a kernel-availability
	// difference.
	Kernel      string   `json:"kernel"`
	CPUFeatures string   `json:"cpu_features"`
	FastMath    bool     `json:"fast_math"`
	Parallelism int      `json:"parallelism"`
	Short       bool     `json:"short"`
	Results     []Result `json:"results"`
}

func main() {
	testing.Init() // registers test.benchtime, which testing.Benchmark reads
	short := flag.Bool("short", false, "smoke mode: one iteration per benchmark")
	out := flag.String("out", "", "write JSON report to this file (default stdout)")
	baseline := flag.String("baseline", "", "compare against a committed report; exit 1 on regression")
	maxRegress := flag.Float64("max-regress", 2.0, "ns/op ratio vs baseline that counts as a regression")
	fast := flag.Bool("fast", false, "run the whole suite under the fused FMA/AVX-512 kernels (skips the separate _fast variant results)")
	flag.Parse()

	mat.SetFastMath(*fast)
	rep := Report{
		Schema:      2,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Kernel:      mat.KernelName(),
		CPUFeatures: mat.CPUFeatures(),
		FastMath:    mat.FastMath(),
		Parallelism: mat.Parallelism(),
		Short:       *short,
	}

	// Short mode trims time budgets but keeps every benchmark warm
	// enough to compare against a full-run baseline: the GEMMs get a few
	// hundred iterations, Table III two gradient steps (its per-step
	// metric is what the baseline diff uses), Observe a single warm call.
	btGemm, btTable3, btObserve := "1s", "1s", "1s"
	if *short {
		btGemm, btTable3, btObserve = "25ms", "2x", "1x"
	}

	rep.Results = append(rep.Results, gemmSweep(btGemm, "")...)
	rep.Results = append(rep.Results, fleetSweep(btGemm)...)
	rep.Results = append(rep.Results, trainSweep(btGemm)...)
	rep.Results = append(rep.Results, benchTable3(btTable3, ""))
	rep.Results = append(rep.Results, benchAgentObserve(btObserve))
	rep.Results = append(rep.Results, benchFig5Cell(*short))

	// Fast-vs-default shapes: unless the whole run was already fast,
	// re-run the GEMM sweep and the Table III step under the fused
	// kernels (silently absent on CPUs without FMA — the _fast names
	// simply do not appear in the report).
	if !*fast {
		if mat.SetFastMath(true); mat.FastMath() {
			rep.Results = append(rep.Results, gemmSweep(btGemm, "_fast")...)
			rep.Results = append(rep.Results, benchTable3(btTable3, "_fast"))
		}
		mat.SetFastMath(false)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("marshal report: %v", err)
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fatalf("write %s: %v", *out, err)
		}
		fmt.Fprintf(os.Stderr, "twig-bench: wrote %s\n", *out)
	} else {
		os.Stdout.Write(blob)
	}

	if *baseline != "" {
		if !compare(rep, *baseline, *maxRegress) {
			os.Exit(1)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "twig-bench: "+format+"\n", args...)
	os.Exit(2)
}

// run executes fn under testing.Benchmark at the given benchtime and
// packages the result.
func run(name, benchtime string, metrics map[string]float64, fn func(b *testing.B)) Result {
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		fatalf("set benchtime: %v", err)
	}
	fmt.Fprintf(os.Stderr, "twig-bench: running %s\n", name)
	r := testing.Benchmark(fn)
	return Result{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Metrics:     metrics,
	}
}

// runBest runs fn under testing.Benchmark reps times and keeps the
// fastest rep, discarding scheduler/neighbour interference on shared
// hardware.
func runBest(reps int, name, benchtime string, fn func(b *testing.B)) Result {
	best := run(name, benchtime, nil, fn)
	for r := 1; r < reps; r++ {
		if res := run(name, benchtime, nil, fn); res.NsPerOp < best.NsPerOp {
			best = res
		}
	}
	return best
}

// gemmSweep benchmarks the tiled kernels over the real layer shapes of
// the paper-size BDQ network (Table III row 1), serial like the
// per-interval inference path. suffix tags the result names ("" for the
// default kernels, "_fast" for the fused re-run).
func gemmSweep(benchtime, suffix string) []Result {
	shapes := []struct{ m, k, n int }{
		{64, 22, 512},  // shared0 forward, batch 64
		{64, 512, 256}, // shared1 forward
		{64, 256, 128}, // branch hidden forward
		{64, 128, 18},  // advantage head forward
		{1, 22, 512},   // batch-1 action selection
	}
	rng := newDetRand()
	var results []Result
	for _, s := range shapes {
		a, b := mat.New(s.m, s.k), mat.New(s.k, s.n)
		fillDet(a.Data, rng)
		fillDet(b.Data, rng)
		dst := mat.New(s.m, s.n)
		flops := 2 * s.m * s.k * s.n
		res := run(fmt.Sprintf("gemm/mul_%dx%dx%d%s", s.m, s.k, s.n, suffix), benchtime, nil, func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				mat.Mul(dst, a, b)
			}
		})
		di := mat.MulDispatch(s.m, s.k, s.n)
		res.Dispatch = fmt.Sprintf("%s/%s/parallel=%v", di.Path, di.Kernel, di.Parallel)
		res.Metrics = map[string]float64{"gflops": float64(flops) / res.NsPerOp}
		results = append(results, res)
	}
	// Backward-pass shapes for the widest layer: dW = xᵀ·g, gradIn = g·Wᵀ.
	x, g, w := mat.New(64, 512), mat.New(64, 256), mat.New(512, 256)
	fillDet(x.Data, rng)
	fillDet(g.Data, rng)
	fillDet(w.Data, rng)
	dw, gin := mat.New(512, 256), mat.New(64, 512)
	res := run("gemm/multransa_512x64x256"+suffix, benchtime, nil, func(bb *testing.B) {
		bb.ReportAllocs()
		for i := 0; i < bb.N; i++ {
			mat.MulTransA(dw, x, g)
		}
	})
	res.Metrics = map[string]float64{"gflops": float64(2*64*512*256) / res.NsPerOp}
	results = append(results, res)
	res = run("gemm/multransb_64x256x512"+suffix, benchtime, nil, func(bb *testing.B) {
		bb.ReportAllocs()
		for i := 0; i < bb.N; i++ {
			mat.MulTransB(gin, g, w)
		}
	})
	res.Metrics = map[string]float64{"gflops": float64(2*64*512*256) / res.NsPerOp}
	results = append(results, res)
	return results
}

// actionSink keeps the fleet-sweep selects from being dead-code
// eliminated.
var actionSink [][]int

// fleetSweep measures the tentpole win: amortized per-agent action
// selection for a fleet of S Twig agents, as S independent batch-1
// sweeps (the per-agent path every node pays today) versus one pooled
// grouped-GEMM flush over the whole fleet (persistent packed panels,
// one fused row-kernel sweep per layer). The trunk is sized so the
// S=36 fleet's weight set stays cache-resident (~650 KB): the sweep
// then measures batching and kernel-dispatch economics, not the memory
// wall — which the S=144 point shows anyway, on both paths alike.
// Each cell keeps the fastest of three benchmark reps; the solo and
// pooled loops stream identical bytes, so interference noise is the
// only thing the reps discard.
func fleetSweep(benchtime string) []Result {
	spec := bdq.Spec{
		StateDim:     2 * int(pmc.NumCounters),
		Agents:       2,
		Dims:         []int{18, 9},
		SharedHidden: []int{32, 16},
		BranchHidden: 8,
	}
	var results []Result
	for _, S := range []int{1, 8, 36, 144} {
		states := make([][]float64, S)
		rng := newDetRand()
		for i := range states {
			states[i] = make([]float64, spec.StateDim)
			fillDet(states[i], rng)
		}
		cfg := func(i int) bdq.AgentConfig {
			// Select-only sweep: a tiny replay buffer keeps the S=144
			// fleet from paying a gigabyte of untouched transition slots.
			return bdq.AgentConfig{Spec: spec, BatchSize: 8, ReplayCapacity: 256, Seed: int64(1 + i)}
		}

		solo := make([]*bdq.Agent, S)
		for i := range solo {
			solo[i] = bdq.NewAgent(cfg(i))
			actionSink = solo[i].SelectGreedy(states[i]) // warm workspaces
		}
		soloRes := runBest(3, fmt.Sprintf("fleet/select_solo_s%d", S), benchtime, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for s := 0; s < S; s++ {
					actionSink = solo[s].SelectGreedy(states[s])
				}
			}
		})
		soloPerAgent := soloRes.NsPerOp / float64(S)
		soloRes.Metrics = map[string]float64{"ns_per_agent_select": soloPerAgent}
		results = append(results, soloRes)

		pool := bdq.NewAgentPool()
		pooled := make([]*bdq.PooledAgent, S)
		for i := range pooled {
			pooled[i] = pool.Attach(bdq.NewAgent(cfg(i)))
		}
		flushAll := func() {
			for s := 0; s < S; s++ {
				pooled[s].QueueSelect(states[s], true)
			}
			pool.FlushStep()
			for s := 0; s < S; s++ {
				actionSink = pooled[s].TakeActions()
			}
		}
		flushAll() // warm packed panels and the stacked workspace
		pooledRes := runBest(3, fmt.Sprintf("fleet/select_pooled_s%d", S), benchtime, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				flushAll()
			}
		})
		pooledPerAgent := pooledRes.NsPerOp / float64(S)
		pooledRes.Metrics = map[string]float64{
			"ns_per_agent_select": pooledPerAgent,
			"speedup_vs_solo":     soloPerAgent / pooledPerAgent,
		}
		results = append(results, pooledRes)
	}
	return results
}

// lossSink keeps the train-sweep observes from being dead-code
// eliminated.
var lossSink float64

// trainSweep measures the grouped training path: one warm Observe (one
// gradient step) per fleet member, as S independent per-agent train
// steps versus one pooled flush that stacks every member's minibatch
// forward, TD-target forward and backward GEMMs into block-diagonal
// grouped calls with fused flat Adam commits. Both paths take identical
// gradient steps (the pooled path is bit-identical per member), so the
// ratio isolates the batching win.
func trainSweep(benchtime string) []Result {
	spec := bdq.Spec{
		StateDim:     2 * int(pmc.NumCounters),
		Agents:       2,
		Dims:         []int{18, 9},
		SharedHidden: []int{32, 16},
		BranchHidden: 8,
	}
	cfg := func(i int) bdq.AgentConfig {
		return bdq.AgentConfig{Spec: spec, BatchSize: 8, ReplayCapacity: 256, Seed: int64(1 + i)}
	}
	state := make([]float64, spec.StateDim)
	next := make([]float64, spec.StateDim)
	rng := newDetRand()
	fillDet(state, rng)
	fillDet(next, rng)
	tr := replay.Transition{
		State:     state,
		Actions:   []int{3, 4, 5, 6},
		Rewards:   []float64{1, 1},
		NextState: next,
	}

	var results []Result
	for _, S := range []int{1, 8, 36} {
		solo := make([]*bdq.Agent, S)
		for i := range solo {
			solo[i] = bdq.NewAgent(cfg(i))
			for j := 0; j < 2*8; j++ { // past warmup: every further Observe trains
				lossSink = solo[i].Observe(tr)
			}
		}
		soloRes := runBest(3, fmt.Sprintf("fleet/train_solo_s%d", S), benchtime, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for s := 0; s < S; s++ {
					lossSink = solo[s].Observe(tr)
				}
			}
		})
		soloPerAgent := soloRes.NsPerOp / float64(S)
		soloRes.Metrics = map[string]float64{"ns_per_agent_train": soloPerAgent}
		results = append(results, soloRes)

		pool := bdq.NewAgentPool()
		pooled := make([]*bdq.PooledAgent, S)
		for i := range pooled {
			pooled[i] = pool.Attach(bdq.NewAgent(cfg(i)))
			for j := 0; j < 2*8; j++ {
				lossSink = pooled[i].Observe(tr)
			}
		}
		flushAll := func() {
			for s := 0; s < S; s++ {
				pooled[s].QueueObserve(tr)
			}
			pool.FlushStep()
			for s := 0; s < S; s++ {
				lossSink = pooled[s].TakeLoss()
			}
		}
		flushAll() // warm the stacked training workspace
		pooledRes := runBest(3, fmt.Sprintf("fleet/train_pooled_s%d", S), benchtime, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				flushAll()
			}
		})
		pooledPerAgent := pooledRes.NsPerOp / float64(S)
		pooledRes.Metrics = map[string]float64{
			"ns_per_agent_train": pooledPerAgent,
			"speedup_vs_solo":    soloPerAgent / pooledPerAgent,
		}
		results = append(results, pooledRes)
	}
	return results
}

// benchTable3 measures the Table III overhead rows; ns_per_op covers a
// whole Table3 iteration, the metric isolates the gradient-descent step.
// Best of 3 reps, like the fleet sweep — a single rep's us_per_step is
// hostage to neighbour interference on shared hardware. Each rep's
// metric is its final calibrated measurement (not the low-N warmup
// probes), and the best rep wins by that metric.
func benchTable3(benchtime, suffix string) Result {
	var usPerStep float64
	var best Result
	for rep := 0; rep < 3; rep++ {
		res := run("table3/gradient_descent"+suffix, benchtime, nil, func(b *testing.B) {
			r := experiments.Table3(b.N)
			usPerStep = float64(r.GradientDescent.Microseconds())
		})
		if rep == 0 || usPerStep < best.Metrics["us_per_step"] {
			res.Metrics = map[string]float64{"us_per_step": usPerStep}
			best = res
		}
	}
	return best
}

// benchAgentObserve measures the warm steady-state per-interval learning
// cost at paper scale — the zero-allocation contract lives here.
func benchAgentObserve(benchtime string) Result {
	sc := experiments.PaperScale()
	spec := bdq.Spec{
		StateDim:     2 * int(pmc.NumCounters),
		Agents:       2,
		Dims:         []int{18, 9},
		SharedHidden: sc.SharedHidden,
		BranchHidden: sc.BranchHidden,
		Dropout:      sc.Dropout,
	}
	agent := bdq.NewAgent(bdq.AgentConfig{
		Spec:      spec,
		BatchSize: sc.BatchSize,
		UsePER:    true,
		Seed:      1,
	})
	state := make([]float64, spec.StateDim)
	next := make([]float64, spec.StateDim)
	for i := range state {
		state[i] = 0.3
		next[i] = 0.31
	}
	t := replay.Transition{State: state, Actions: []int{3, 4, 5, 6}, Rewards: []float64{1, 1}, NextState: next}
	for i := 0; i < 2*sc.BatchSize; i++ {
		agent.Observe(t)
	}
	return run("agent/observe_warm", benchtime, nil, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			agent.Observe(t)
		}
	})
}

// benchFig5Cell times one quick-scale Fig. 5 control cell (masstree at
// 50% load under Twig-S) end to end and reports simulated control
// intervals per wall-clock second. Short mode truncates the run.
func benchFig5Cell(short bool) Result {
	sc := experiments.QuickScale()
	if short {
		sc.LearnS = 200
		sc.SummaryS = 50
	}
	seconds := sc.LearnS + sc.SummaryS
	fmt.Fprintf(os.Stderr, "twig-bench: running fig5/quick_cell (%d intervals)\n", seconds)
	prof := service.MustLookup("masstree")
	srv := experiments.NewServer(1, "masstree")
	c := experiments.NewTwig(srv, sc, 1, "masstree")
	start := time.Now()
	experiments.Run(experiments.RunConfig{
		Server:       srv,
		Controller:   c,
		Patterns:     []loadgen.Pattern{loadgen.Fixed(0.5 * prof.MaxLoadRPS)},
		Seconds:      seconds,
		SummaryFromS: sc.LearnS,
	})
	elapsed := time.Since(start)
	return Result{
		Name:    "fig5/quick_cell",
		N:       seconds,
		NsPerOp: float64(elapsed.Nanoseconds()) / float64(seconds),
		Metrics: map[string]float64{
			"intervals_per_sec": float64(seconds) / elapsed.Seconds(),
		},
	}
}

// compare checks the current report against a committed baseline and
// reports per-result ratios. A result regresses when its ns/op exceeds
// maxRegress × baseline, or when a zero-allocation benchmark starts
// allocating. Results missing on either side are noted, never fatal.
func compare(cur Report, baselinePath string, maxRegress float64) bool {
	blob, err := os.ReadFile(baselinePath)
	if err != nil {
		fatalf("read baseline: %v", err)
	}
	var base Report
	if err := json.Unmarshal(blob, &base); err != nil {
		fatalf("parse baseline %s: %v", baselinePath, err)
	}
	baseByName := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseByName[r.Name] = r
	}
	ok := true
	for _, r := range cur.Results {
		b, found := baseByName[r.Name]
		if !found {
			fmt.Fprintf(os.Stderr, "twig-bench: %-28s  new (no baseline)\n", r.Name)
			continue
		}
		// Table III's ns/op carries a 1/N-amortised fixed cost (the
		// monitor/mapper rows), so its stable per-step metric is the
		// comparison basis when both sides report it.
		cur, ref, unit := r.NsPerOp, b.NsPerOp, "ns/op"
		if c, okc := r.Metrics["us_per_step"]; okc {
			if bb, okb := b.Metrics["us_per_step"]; okb {
				cur, ref, unit = c, bb, "µs/step"
			}
		}
		ratio := cur / ref
		status := "ok"
		if ratio > maxRegress {
			status = fmt.Sprintf("REGRESSION (>%.1fx)", maxRegress)
			ok = false
		}
		// The zero-alloc contract is enforced on the warm steady-state
		// path only; cold single-iteration runs legitimately pay pool
		// warm-up allocations.
		if r.Name == "agent/observe_warm" && b.AllocsPerOp == 0 && r.AllocsPerOp > 0 {
			status = fmt.Sprintf("REGRESSION (%d allocs/op on zero-alloc path)", r.AllocsPerOp)
			ok = false
		}
		fmt.Fprintf(os.Stderr, "twig-bench: %-28s  %10.0f %s  baseline %10.0f  ratio %.2fx  %s\n",
			r.Name, cur, unit, ref, ratio, status)
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "twig-bench: FAIL — regressions vs baseline")
	} else {
		fmt.Fprintln(os.Stderr, "twig-bench: PASS — within baseline envelope")
	}
	return ok
}

// newDetRand and fillDet give the sweep deterministic operand data
// without importing math/rand (xorshift64).
func newDetRand() *uint64 { s := uint64(0x9E3779B97F4A7C15); return &s }

func fillDet(data []float64, s *uint64) {
	for i := range data {
		*s ^= *s << 13
		*s ^= *s >> 7
		*s ^= *s << 17
		// Map to roughly [-1, 1).
		data[i] = float64(int64(*s))/float64(1<<63)*0.5 + 0.25
	}
}
