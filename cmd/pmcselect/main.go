// Command pmcselect runs the Table I PMC-selection pipeline of
// Sec. III-B1: it samples every counter across the core × DVFS grid for
// the chosen services, builds the Pearson correlation matrix against
// tail latency, performs PCA, and ranks the counters by importance.
//
// Usage:
//
//	pmcselect [-services masstree,xapian,moses,img-dnn] [-seconds 40]
package main

import (
	"flag"
	"fmt"
	"strings"

	"github.com/twig-sched/twig/internal/experiments"
	"github.com/twig-sched/twig/internal/sim/service"
)

func main() {
	var (
		servicesFlag = flag.String("services", strings.Join(service.TailbenchNames(), ","), "comma-separated services to profile")
		seconds      = flag.Int("seconds", 40, "seconds per core×DVFS grid point (paper: 1000)")
		seed         = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	names := strings.Split(*servicesFlag, ",")
	fmt.Println(experiments.Table1(names, *seconds, *seed))
}
