// Command twig-experiments regenerates any table or figure of the
// paper's evaluation on the simulated platform.
//
// Usage:
//
//	twig-experiments -experiment fig5 [-scale quick|paper] [-seed 1] [-parallel N]
//	twig-experiments -fig figscen -short
//	twig-experiments -experiment all
//
// -fig is an alias for -experiment. -parallel fans independent
// experiment cells out over N workers (default GOMAXPROCS); results are
// byte-identical at any setting. -short substitutes a smoke-test scale
// (tiny networks, 200-interval runs) so CI can rerun an experiment and
// diff the output in seconds. -fast swaps in the fused FMA/AVX-512 GEMM
// kernels where the CPU has them: faster, but results drift by trailing
// ulps from the default (bit-reproducible) kernels.
//
// Experiment ids: fig1, table1, fig4, table2, table3, fig5, fig6, fig7,
// figmem, fig8, fig9, fig10, fig11, fig12, fig13, figfault, figchaos,
// figscen, ablations.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/twig-sched/twig/internal/experiments"
	"github.com/twig-sched/twig/internal/mat"
	"github.com/twig-sched/twig/internal/sim/service"
)

func main() {
	var (
		exp      = flag.String("experiment", "all", "experiment id (fig1..fig13, table1..table3, figmem, figscen, ablations, all)")
		fig      = flag.String("fig", "", "alias for -experiment")
		scale    = flag.String("scale", "quick", "experiment scale: quick or paper")
		short    = flag.Bool("short", false, "smoke-test scale: tiny networks, 200-interval runs (overrides -scale)")
		seed     = flag.Int64("seed", 1, "random seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent experiment cells (results are identical at any setting)")
		fast     = flag.Bool("fast", false, "use fused FMA/AVX-512 GEMM kernels when the CPU has them; results drift by trailing ulps vs the default kernels")
	)
	flag.Parse()
	experiments.SetParallelism(*parallel)
	if *fast {
		fmt.Fprintf(os.Stderr, "twig-experiments: fast math: %s kernels (cpu: %s)\n",
			mat.SetFastMath(true), mat.CPUFeatures())
	}
	if *fig != "" {
		*exp = *fig
	}

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.QuickScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *short {
		sc = experiments.ShortScale()
	}

	runners := map[string]func(){
		"fig1": func() {
			samples := 4000
			if sc.Name == "paper" {
				samples = 30_000
			}
			fmt.Println(experiments.Fig1("memcached", samples, *seed))
			fmt.Println(experiments.Fig1("web-search", samples, *seed+1))
		},
		"table1": func() {
			secs := 40
			if sc.Name == "paper" {
				secs = 1000
			}
			fmt.Println(experiments.Table1(service.TailbenchNames(), secs, *seed))
		},
		"fig4": func() {
			for _, svc := range []string{"xapian", "masstree"} {
				fmt.Println(experiments.Fig4(svc, 12, *seed))
			}
		},
		"table2":          func() { fmt.Println(experiments.Table2(60, *seed)) },
		"table3":          func() { fmt.Println(experiments.Table3(20)) },
		"fig5":            func() { fmt.Println(experiments.Fig5(service.TailbenchNames(), sc, *seed)) },
		"fig6":            func() { fmt.Println(experiments.Fig6(sc, *seed)) },
		"fig7":            func() { fmt.Println(experiments.Fig7(sc, *seed)) },
		"figmem":          func() { fmt.Println(experiments.FigMem(3, 30, 25)) },
		"fig8":            func() { fmt.Println(experiments.Fig8(sc, *seed)) },
		"fig9":            func() { fmt.Println(experiments.Fig9(sc, *seed)) },
		"fig10":           func() { fmt.Println(experiments.Fig10(sc, *seed)) },
		"fig11":           func() { fmt.Println(experiments.Fig11(sc, *seed)) },
		"fig12":           func() { fmt.Println(experiments.Fig12(sc, *seed)) },
		"figfault":        func() { fmt.Println(experiments.FigFault(sc, *seed)) },
		"figchaos":        func() { fmt.Println(experiments.FigChaos(sc, *seed)) },
		"figscen":         func() { fmt.Println(experiments.FigScen(sc, *seed)) },
		"fig13":           func() { fmt.Println(experiments.Fig13(experiments.ServicePairs(), sc, *seed)) },
		"extension-cat":   func() { fmt.Println(experiments.ExtensionCAT(sc, *seed)) },
		"extension-batch": func() { fmt.Println(experiments.BatchColoc(sc, *seed)) },
		"ablations": func() {
			fmt.Println(experiments.AblationReplay(sc, *seed))
			fmt.Println(experiments.AblationEta(sc, *seed))
			fmt.Println(experiments.AblationReward(sc, *seed))
			fmt.Println(experiments.AblationTargetMode(sc, *seed))
			fmt.Println(experiments.AblationMultiAgentValue(sc, *seed))
		},
	}

	order := []string{
		"fig1", "table1", "fig4", "table2", "table3", "fig5", "fig6", "fig7",
		"figmem", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		"figfault", "figchaos", "figscen", "extension-cat", "extension-batch", "ablations",
	}
	if *exp == "all" {
		for _, id := range order {
			t0 := time.Now()
			fmt.Printf("=== %s ===\n", id)
			runners[id]()
			fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(t0).Seconds())
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want one of %v)\n", *exp, order)
		os.Exit(2)
	}
	run()
}
