// Command powermodel profiles a service across load levels, core counts
// and DVFS states (with unused cores hot-unplugged), fits the Eq. 2
// per-service power model with random grid search + 5-fold CV, and
// reports the Fig. 4 percentage absolute average error.
//
// Usage:
//
//	powermodel [-services xapian,masstree] [-seconds 12]
package main

import (
	"flag"
	"fmt"
	"strings"

	"github.com/twig-sched/twig/internal/experiments"
)

func main() {
	var (
		servicesFlag = flag.String("services", "xapian,masstree", "comma-separated services to fit")
		seconds      = flag.Int("seconds", 12, "seconds per profiling grid point")
		seed         = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	for _, name := range strings.Split(*servicesFlag, ",") {
		fmt.Println(experiments.Fig4(strings.TrimSpace(name), *seconds, *seed))
	}
}
