module github.com/twig-sched/twig

go 1.22
